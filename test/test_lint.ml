(* Static analyzer tests: every diagnostic code on minimal fixtures, the
   Example 3 / Fig. 6 virtual-object case, the constructor validation of
   Commutativity, and the guard that the shipped registries lint clean
   (zero errors). *)

open Ooser_core
open Ooser_workload
module A = Ooser_analysis
module Diagnostic = A.Diagnostic
module Summary = A.Summary
module Spec_lint = A.Spec_lint
module Callgraph = A.Callgraph
module Lock_order = A.Lock_order
module Lint = A.Lint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let codes diags = List.map (fun d -> d.Diagnostic.code) diags
let has_code c diags = List.mem c (codes diags)
let o = Obj_id.v

let info ?(methods = []) ?compensated name spec =
  { Spec_lint.obj = name; spec; methods; compensated }

(* -- SPEC001: asymmetric specification ------------------------------------- *)

let asymmetric_spec =
  (* commutes iff the FIRST action is "fast" — order-dependent, wrong *)
  Commutativity.predicate ~name:"broken" ~vocab:[ "fast"; "slow" ]
    (fun a _ -> Action.meth a = "fast")

let test_spec001 () =
  let diags = Spec_lint.check_spec (info "B" asymmetric_spec) in
  check_bool "SPEC001 reported" true (has_code "SPEC001" diags);
  check_bool "is an error" true (Diagnostic.errors diags <> []);
  check_int "non-zero exit" 1 (Diagnostic.exit_code diags);
  let sound = Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ] in
  check_int "sound spec has no asymmetry" 0
    (List.length (Spec_lint.asymmetric_pairs sound))

(* -- SPEC002: read-like method conflicting with itself ----------------------- *)

let test_spec002 () =
  let spec =
    Commutativity.predicate ~name:"grumpy" ~vocab:[ "read"; "write" ]
      (fun _ _ -> false)
  in
  let diags = Spec_lint.check_spec (info "G" spec) in
  check_bool "SPEC002 reported" true (has_code "SPEC002" diags);
  check_bool "no error for self-conflict" true (Diagnostic.errors diags = []);
  check_bool "read named" true
    (List.exists
       (fun d ->
         d.Diagnostic.code = "SPEC002" && d.Diagnostic.loc.Diagnostic.meth = Some "read")
       diags)

(* -- SPEC003 / SPEC004: vocabulary gaps and unknown objects ------------------- *)

let test_spec003_spec004 () =
  let reg =
    Commutativity.fixed
      [ ("P", Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]) ]
  in
  let s =
    Summary.txn "t1"
      [
        Summary.call (o "P") "mystery" [];  (* not in the rw vocabulary *)
        Summary.call (o "Q") "poke" [];  (* not in the registry at all *)
      ]
  in
  let diags = Spec_lint.check_usage reg [ s ] in
  check_bool "SPEC003 reported" true (has_code "SPEC003" diags);
  check_bool "SPEC004 reported" true (has_code "SPEC004" diags);
  check_bool "all warnings" true (Diagnostic.errors diags = []);
  (* a method inside the vocabulary raises nothing *)
  let ok = Summary.txn "t2" [ Summary.call (o "P") "read" [] ] in
  check_int "clean usage" 0 (List.length (Spec_lint.check_usage reg [ ok ]))

(* -- CALL001: Def. 5 extension sites (Example 3 / Fig. 6) --------------------- *)

(* a1 on O1 calls a11 on O2, which calls a112 back on O1: the analyzer
   must demand the virtual object O1', exactly like the runtime
   extension on the same history (Paper_examples.example3_history). *)
let test_call001_example3 () =
  let s =
    Summary.txn "T1"
      [
        Summary.call (o "O1") "a1"
          [ Summary.call (o "O2") "a11" [ Summary.call (o "O1") "a112" [] ] ];
      ]
  in
  let sites = Callgraph.extension_sites s in
  check_int "one site" 1 (List.length sites);
  let site = List.hd sites in
  check_bool "site on O1" true (Obj_id.equal site.Callgraph.obj (o "O1"));
  Alcotest.(check string) "outer" "a1" site.Callgraph.outer_meth;
  Alcotest.(check string) "inner" "a112" site.Callgraph.inner_meth;
  let diags = Callgraph.check [ s ] in
  check_bool "CALL001 reported" true (has_code "CALL001" diags);
  check_bool "hint names the virtual object" true
    (List.exists
       (fun d -> contains_sub d.Diagnostic.hint "O1'")
       diags);
  (* the runtime extension agrees: it creates the virtual object O1' *)
  let ext = Extension.extend (Paper_examples.example3_history ()) in
  check_bool "runtime extension also virtualises O1" true
    (List.exists
       (fun ob -> Obj_id.name ob = "O1" && Obj_id.is_virtual ob)
       (Extension.virtual_objects ext))

let test_call001_none () =
  let s =
    Summary.txn "flat"
      [ Summary.call (o "A") "m" [ Summary.call (o "B") "n" [] ] ]
  in
  check_int "no site" 0 (List.length (Callgraph.extension_sites s))

(* -- conflict graph ------------------------------------------------------------ *)

let rw_reg =
  Commutativity.fixed
    [
      ("P", Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]);
      ("Q", Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]);
    ]

let test_conflict_edges () =
  let t1 = Summary.txn "t1" [ Summary.call (o "P") "write" [] ] in
  let t2 = Summary.txn "t2" [ Summary.call (o "P") "write" [] ] in
  let t3 = Summary.txn "t3" [ Summary.call (o "Q") "read" [] ] in
  let edges = Callgraph.conflict_edges rw_reg [ t1; t2; t3 ] in
  check_int "one edge" 1 (List.length edges);
  let e = List.hd edges in
  Alcotest.(check string) "from" "t1" e.Callgraph.from_txn;
  Alcotest.(check string) "to" "t2" e.Callgraph.to_txn;
  (* two readers of Q do not conflict *)
  let t4 = Summary.txn "t4" [ Summary.call (o "Q") "read" [] ] in
  check_int "readers commute" 0
    (List.length (Callgraph.conflict_edges rw_reg [ t3; t4 ]))

(* -- DL001: static lock-order cycle ------------------------------------------- *)

let test_dl001 () =
  let t1 =
    Summary.txn "t1"
      [ Summary.call (o "P") "write" []; Summary.call (o "Q") "write" [] ]
  in
  let t2 =
    Summary.txn "t2"
      [ Summary.call (o "Q") "write" []; Summary.call (o "P") "write" [] ]
  in
  let diags = Lock_order.check rw_reg [ t1; t2 ] in
  check_bool "DL001 reported" true (has_code "DL001" diags);
  check_bool "cycle found" true
    (Lock_order.find_cycle rw_reg [ t1; t2 ] <> None);
  (* consistent acquisition order: no cycle *)
  let t2' =
    Summary.txn "t2"
      [ Summary.call (o "P") "write" []; Summary.call (o "Q") "write" [] ]
  in
  check_int "consistent order clean" 0
    (List.length (Lock_order.check rw_reg [ t1; t2' ]));
  (* commuting accesses cannot deadlock, whatever the order *)
  let c1 =
    Summary.txn "c1"
      [ Summary.call (o "P") "read" []; Summary.call (o "Q") "read" [] ]
  in
  let c2 =
    Summary.txn "c2"
      [ Summary.call (o "Q") "read" []; Summary.call (o "P") "read" [] ]
  in
  check_int "uncontended clean" 0 (List.length (Lock_order.check rw_reg [ c1; c2 ]))

(* -- the full driver over a broken target --------------------------------------- *)

let test_driver_exit_codes () =
  let target =
    Lint.target ~name:"fixture"
      ~objects:[ info "B" asymmetric_spec ]
      (Commutativity.fixed [ ("B", asymmetric_spec) ])
  in
  let diags = Lint.run target in
  check_int "errors gate" 1 (Lint.exit_code diags);
  let clean =
    Lint.target ~name:"clean"
      ~objects:
        [ info "P" (Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]) ]
      rw_reg
  in
  check_int "clean exits zero" 0 (Lint.exit_code (Lint.run clean))

(* -- constructor validation (construction-time spec hygiene) --------------------- *)

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

let test_constructor_validation () =
  check_bool "rw rejects read+write overlap" true
    (raises_invalid (fun () ->
         Commutativity.rw ~reads:[ "m" ] ~writes:[ "m" ]));
  check_bool "rw rejects duplicate read" true
    (raises_invalid (fun () ->
         Commutativity.rw ~reads:[ "r"; "r" ] ~writes:[]));
  check_bool "conflict matrix rejects duplicate pair" true
    (raises_invalid (fun () ->
         Commutativity.of_conflict_matrix ~name:"m"
           [ ("a", "b"); ("a", "b") ]));
  check_bool "conflict matrix rejects mirrored duplicate" true
    (raises_invalid (fun () ->
         Commutativity.of_conflict_matrix ~name:"m"
           [ ("a", "b"); ("b", "a") ]));
  check_bool "commute matrix rejects duplicate pair" true
    (raises_invalid (fun () ->
         Commutativity.of_commute_matrix ~name:"m"
           [ ("x", "x"); ("x", "x") ]));
  (* valid constructions still work and carry their vocabulary *)
  let s = Commutativity.rw ~reads:[ "r" ] ~writes:[ "w" ] in
  Alcotest.(check (option (list string)))
    "rw vocabulary" (Some [ "r"; "w" ])
    (Commutativity.vocabulary s);
  let m = Commutativity.of_conflict_matrix ~name:"m" [ ("a", "b") ] in
  Alcotest.(check (option (list string)))
    "matrix vocabulary" (Some [ "a"; "b" ])
    (Commutativity.vocabulary m)

(* -- shipped registries lint clean (the acceptance guard) ------------------------- *)

let shipped_target_clean name target () =
  let diags = Lint.run target in
  Alcotest.(check (list string))
    (name ^ " has zero errors") []
    (codes (Diagnostic.errors diags))

(* -- property: every shipped spec answers symmetrically ---------------------------- *)

let prop_shipped_specs_symmetric =
  QCheck2.Test.make ~name:"shipped specs are symmetric (Def. 9)" ~count:20
    (QCheck2.Gen.int_range 1 10_000)
    (fun seed ->
      List.for_all
        (fun t ->
          List.for_all
            (fun oi ->
              Spec_lint.asymmetric_pairs ~methods:oi.Spec_lint.methods
                oi.Spec_lint.spec
              = [])
            t.Lint.objects)
        (Lint_targets.all ~seed ()))

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "SPEC001 asymmetric spec is an error" `Quick
          test_spec001;
        Alcotest.test_case "SPEC002 self-conflicting read" `Quick test_spec002;
        Alcotest.test_case "SPEC003/SPEC004 vocabulary gaps" `Quick
          test_spec003_spec004;
        Alcotest.test_case "CALL001 Def. 5 extension site (Example 3)" `Quick
          test_call001_example3;
        Alcotest.test_case "no spurious extension site" `Quick test_call001_none;
        Alcotest.test_case "static conflict graph" `Quick test_conflict_edges;
        Alcotest.test_case "DL001 lock-order cycle" `Quick test_dl001;
        Alcotest.test_case "driver exit codes" `Quick test_driver_exit_codes;
        Alcotest.test_case "constructors reject bad vocabularies" `Quick
          test_constructor_validation;
        Alcotest.test_case "banking registry lints clean" `Quick
          (shipped_target_clean "banking" (Lint_targets.banking ~seed:1 ()));
        Alcotest.test_case "inventory registry lints clean" `Quick
          (shipped_target_clean "inventory" (Lint_targets.inventory ~seed:1 ()));
        Alcotest.test_case "encyclopedia registry lints clean" `Quick
          (shipped_target_clean "encyclopedia"
             (Lint_targets.encyclopedia ~seed:1 ()));
        QCheck_alcotest.to_alcotest prop_shipped_specs_symmetric;
      ] );
  ]
