(* Static conflict atlas tests: soundness of the verdicts against the
   dynamic checker (no false "safe" over random schedules, every witness
   rejected), the dense conflict table and its engine preloading parity,
   the HOT001/COMP001 rules, Callgraph coverage on recursive summaries,
   and the shared lint/analyze exit-code mapping. *)

open Ooser_core
open Ooser_workload
module A = Ooser_analysis
module Atlas = A.Atlas
module Inherit = A.Inherit
module Effects = A.Effects
module Summary = A.Summary
module Callgraph = A.Callgraph
module Diagnostic = A.Diagnostic
module Lint = A.Lint
module Rng = Ooser_sim.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let o = Obj_id.v

let rw = Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]

let registry_of assoc =
  Commutativity.registry
    ~known:(fun oid -> List.mem_assoc (Obj_id.name (Obj_id.original oid)) assoc)
    (fun oid ->
      match List.assoc_opt (Obj_id.name (Obj_id.original oid)) assoc with
      | Some s -> s
      | None -> Commutativity.all_conflict)

let target ?(objects = []) name assoc summaries =
  Lint.target ~name ~objects ~summaries (registry_of assoc)

(* -- soundness: static "safe" agrees with the checker on random
      schedules; every witness fails it ----------------------------------- *)

let random_schedules = 100

let replay_random rng (e : Atlas.entry) =
  let t1, t2 = e.Atlas.inh.Inherit.tops in
  let order = Random_schedules.random_order rng [ t1; t2 ] in
  let h =
    History.v ~tops:[ t1; t2 ] ~order ~commut:e.Atlas.inh.Inherit.registry
  in
  (Serializability.check h).Serializability.oo_serializable

let agreement ?max_interleavings ~seed target () =
  let atlas = Atlas.build ?max_interleavings target in
  let rng = Rng.create ~seed in
  List.iter
    (fun (e : Atlas.entry) ->
      match e.Atlas.verdict with
      | Atlas.Safe _ ->
          for _ = 1 to random_schedules do
            if not (replay_random rng e) then
              Alcotest.failf
                "%s: pair %s x %s statically safe but a random schedule \
                 fails the checker"
                atlas.Atlas.target_name (fst e.Atlas.pair) (snd e.Atlas.pair)
          done
      | Atlas.Unsafe w ->
          let v = Serializability.check (Atlas.witness_history e w) in
          if v.Serializability.oo_serializable then
            Alcotest.failf
              "%s: pair %s x %s witness schedule is accepted by the checker"
              atlas.Atlas.target_name (fst e.Atlas.pair) (snd e.Atlas.pair)
      | Atlas.Unknown _ -> ())
    atlas.Atlas.entries;
  (* the suite must exercise at least one non-trivial verdict *)
  check_bool "atlas has entries" true (atlas.Atlas.entries <> [])

(* Shipped workloads.  The encyclopedia enumeration budget is reduced to
   keep the suite fast: pairs above it become Unknown (never silently
   safe), the structural and small exhaustive proofs remain checked. *)
let agreement_tests =
  [
    Alcotest.test_case "banking rw: safe agrees over 100 random schedules"
      `Quick
      (agreement ~seed:7 (Lint_targets.banking ~semantics:`Rw ~seed:3 ()));
    Alcotest.test_case "banking escrow: no false safe" `Quick
      (agreement ~seed:11 (Lint_targets.banking ~seed:3 ()));
    Alcotest.test_case "inventory: no false safe" `Quick
      (agreement ~seed:13 (Lint_targets.inventory ~seed:3 ()));
    Alcotest.test_case "encyclopedia: safe agrees over 100 random schedules"
      `Slow
      (agreement ~max_interleavings:600 ~seed:17
         (Lint_targets.encyclopedia ~seed:3 ()));
  ]

(* -- crafted verdicts --------------------------------------------------- *)

let entry_for atlas (l, r) =
  match
    List.find_opt
      (fun (e : Atlas.entry) -> e.Atlas.pair = (l, r) || e.Atlas.pair = (r, l))
      atlas.Atlas.entries
  with
  | Some e -> e
  | None -> Alcotest.failf "no atlas entry for %s x %s" l r

(* Opposite write orders on two rw objects: the textbook anti-serial
   pair.  The minimal witness needs exactly two context switches. *)
let test_unsafe_witness () =
  let t1 = Summary.txn "t1" [ Summary.call (o "A") "write" []; Summary.call (o "B") "write" [] ]
  and t2 = Summary.txn "t2" [ Summary.call (o "B") "write" []; Summary.call (o "A") "write" [] ] in
  let tgt = target "opposite" [ ("A", rw); ("B", rw) ] [ t1; t2 ] in
  let atlas = Atlas.build tgt in
  let e = entry_for atlas ("t1", "t2") in
  match e.Atlas.verdict with
  | Atlas.Unsafe w ->
      check_int "minimal witness: 2 switches" 2 w.Atlas.w_switches;
      let v = Serializability.check (Atlas.witness_history e w) in
      check_bool "witness rejected" false v.Serializability.oo_serializable;
      check_bool "failing objects named" true (w.Atlas.w_objects <> [])
  | v -> Alcotest.failf "expected unsafe, got %s" (Atlas.verdict_label v)

let test_safe_no_conflict () =
  let t1 = Summary.txn "t1" [ Summary.call (o "A") "read" [] ]
  and t2 = Summary.txn "t2" [ Summary.call (o "A") "read" []; Summary.call (o "B") "write" [] ] in
  let atlas = Atlas.build (target "reads" [ ("A", rw); ("B", rw) ] [ t1; t2 ]) in
  match (entry_for atlas ("t1", "t2")).Atlas.verdict with
  | Atlas.Safe Atlas.No_conflict -> ()
  | v -> Alcotest.failf "expected safe/no-conflict, got %s" (Atlas.verdict_label v)

(* A single conflicting leaf pair cannot close a per-object cycle: the
   channel-counting argument proves the pair safe with no enumeration. *)
let test_safe_isolated () =
  let t1 = Summary.txn "t1" [ Summary.call (o "A") "write" []; Summary.call (o "B") "read" [] ]
  and t2 = Summary.txn "t2" [ Summary.call (o "A") "write" [] ] in
  let atlas = Atlas.build (target "single" [ ("A", rw); ("B", rw) ] [ t1; t2 ]) in
  let e = entry_for atlas ("t1", "t2") in
  check_int "one channel" 1 (List.length e.Atlas.inh.Inherit.channels);
  match e.Atlas.verdict with
  | Atlas.Safe Atlas.Isolated_channels -> ()
  | v -> Alcotest.failf "expected safe/isolated, got %s" (Atlas.verdict_label v)

(* Commuting composite callers (Def. 11) stop the leaf conflicts from
   climbing into a top-level dependency — but the per-object relation at
   the register still cycles under free primitive interleaving (the
   protocol, not the statics, is what keeps [incr] atomic), so the
   verdict must stay Unsafe: absorption must never mask a leaf cycle. *)
let counter_target () =
  let ctr =
    Commutativity.of_commute_matrix ~name:"counter" [ ("incr", "incr") ]
  in
  let incr_txn name =
    Summary.txn name
      [
        Summary.call (o "C") "incr"
          [
            Summary.call (o "R") "read" []; Summary.call (o "R") "write" [];
          ];
      ]
  in
  target "counter" [ ("C", ctr); ("R", rw) ] [ incr_txn "i1"; incr_txn "i2" ]

let test_safe_commuting_callers () =
  let atlas = Atlas.build (counter_target ()) in
  (* i1 and i2 have the same call-tree shape: one representative, and the
     self-pair covers two concurrent instances of it *)
  check_int "deduped to one type" 1 (List.length atlas.Atlas.summaries);
  let e = entry_for atlas ("i1", "i1") in
  List.iter
    (fun (c : Inherit.channel) ->
      check_bool "channel stopped by commuting callers" true
        (c.Inherit.stop = Inherit.Callers_commute))
    e.Atlas.inh.Inherit.channels;
  match e.Atlas.verdict with
  | Atlas.Unsafe w ->
      let v = Serializability.check (Atlas.witness_history e w) in
      check_bool "leaf-cycle witness rejected" false
        v.Serializability.oo_serializable
  | v ->
      Alcotest.failf "expected unsafe (leaf cycle), got %s"
        (Atlas.verdict_label v)

(* One writer wedged between another transaction's two writes on the
   same object: the single write cannot be serialized before or after
   the pair, so the inherited top-level dependencies cycle.  Exercises
   the enumeration on a shared-deposit pair with the smallest possible
   merge space (C(3,1) = 3). *)
let test_unsafe_wedge () =
  let t1 = Summary.txn "one" [ Summary.call (o "A") "write" [] ]
  and t2 =
    Summary.txn "two"
      [ Summary.call (o "A") "write" []; Summary.call (o "A") "write" [] ]
  in
  let atlas = Atlas.build (target "wedge" [ ("A", rw) ] [ t1; t2 ]) in
  let e = entry_for atlas ("one", "two") in
  check_bool "channels share a deposit object" true
    (e.Atlas.inh.Inherit.shared <> []);
  match e.Atlas.verdict with
  | Atlas.Unsafe w ->
      check_int "wedge witness: 2 switches" 2 w.Atlas.w_switches;
      let v = Serializability.check (Atlas.witness_history e w) in
      check_bool "wedge witness rejected" false
        v.Serializability.oo_serializable
  | v -> Alcotest.failf "expected unsafe, got %s" (Atlas.verdict_label v)

(* Without the commuting-caller absorption the same shape is unsafe:
   conflicting callers let the dependency climb to the top. *)
let test_unsafe_without_absorption () =
  let noncommuting = Commutativity.all_conflict in
  let tgt =
    let txn name =
      Summary.txn name
        [
          Summary.call (o "C") "incr"
            [
              Summary.call (o "R") "read" [];
              Summary.call (o "R") "write" [];
            ];
        ]
    in
    target "counter-conflict"
      [ ("C", noncommuting); ("R", rw) ]
      [ txn "i1"; txn "i2" ]
  in
  let atlas = Atlas.build tgt in
  match (entry_for atlas ("i1", "i1")).Atlas.verdict with
  | Atlas.Unsafe _ -> ()
  | v -> Alcotest.failf "expected unsafe, got %s" (Atlas.verdict_label v)

let test_unknown_unstable () =
  let escrow =
    Commutativity.predicate ~name:"escrow" (fun _ _ -> true)
    (* stable defaults to false: the decision may read object state *)
  in
  let t1 = Summary.txn "t1" [ Summary.call (o "E") "withdraw" [] ] in
  let atlas = Atlas.build (target "escrow" [ ("E", escrow) ] [ t1 ]) in
  match (entry_for atlas ("t1", "t1")).Atlas.verdict with
  | Atlas.Unknown _ -> ()
  | v -> Alcotest.failf "expected unknown, got %s" (Atlas.verdict_label v)

let test_unknown_budget () =
  (* opposite alternation phases keep the two shapes distinct under the
     shape-key dedup *)
  let mk name phase =
    Summary.txn name
      (List.init 8 (fun i ->
           Summary.call (o (Printf.sprintf "X%d" ((i + phase) mod 2))) "write" []))
  in
  let assoc = [ ("X0", rw); ("X1", rw) ] in
  let atlas =
    Atlas.build ~max_interleavings:10
      (target "big" assoc [ mk "t1" 0; mk "t2" 1 ])
  in
  match (entry_for atlas ("t1", "t2")).Atlas.verdict with
  | Atlas.Unknown _ -> ()
  | v -> Alcotest.failf "expected unknown (budget), got %s" (Atlas.verdict_label v)

(* -- the dense conflict table ------------------------------------------- *)

let mk_action top obj meth =
  Action.v
    ~id:(Ids.Action_id.v ~top ~path:[ 1 ])
    ~obj ~meth
    ~process:(Ids.Process_id.main top)
    ()

let test_table_lookup () =
  let tbl =
    Commutativity.table_of_entries
      [
        { Commutativity.e_obj = "A"; e_meth = "read"; e_meth' = "read"; e_commutes = true };
        { Commutativity.e_obj = "A"; e_meth = "read"; e_meth' = "write"; e_commutes = false };
        { Commutativity.e_obj = "A"; e_meth = "write"; e_meth' = "write"; e_commutes = false };
      ]
  in
  let look m m' = Commutativity.table_lookup tbl (mk_action 1 (o "A") m) (mk_action 2 (o "A") m') in
  check_bool "read/read commutes" true (look "read" "read" = Some true);
  check_bool "symmetric fill" true (look "write" "read" = Some false);
  check_bool "uncovered method" true (look "read" "scan" = None);
  check_bool "uncovered object" true
    (Commutativity.table_lookup tbl (mk_action 1 (o "B") "read")
       (mk_action 2 (o "B") "read")
    = None);
  let objs, cells = Commutativity.table_stats tbl in
  check_int "one object" 1 objs;
  check_int "covered cells" 4 cells

let test_table_contradiction () =
  Alcotest.check_raises "contradictory entries rejected"
    (Invalid_argument
       "Commutativity.table_of_entries: contradictory entries for (A, read, \
        read)")
    (fun () ->
      ignore
        (Commutativity.table_of_entries
           [
             { Commutativity.e_obj = "A"; e_meth = "read"; e_meth' = "read"; e_commutes = true };
             { Commutativity.e_obj = "A"; e_meth = "read"; e_meth' = "read"; e_commutes = false };
           ]))

let test_table_virtual_object () =
  (* lookups key on the ORIGINAL object, so decisions at Def. 5 virtual
     objects come from the original's row *)
  let tbl =
    Commutativity.table_of_entries
      [ { Commutativity.e_obj = "A"; e_meth = "write"; e_meth' = "write"; e_commutes = false } ]
  in
  let virt = Obj_id.virtualize (o "A") ~rank:1 in
  check_bool "virtual object resolves to original" true
    (Commutativity.table_lookup tbl (mk_action 1 virt "write")
       (mk_action 2 virt "write")
    = Some false)

let test_preload_cache () =
  let reg = registry_of [ ("A", rw) ] in
  let cache = Commutativity.cached reg in
  let a1 = mk_action 1 (o "A") "read" and a2 = mk_action 2 (o "A") "write" in
  check_bool "probe path answers" false (Commutativity.cached_test cache a1 a2);
  check_int "no atlas hits before preload" 0 (Commutativity.atlas_hits cache);
  let atlas =
    Atlas.build
      (target "pair" [ ("A", rw) ]
         [
           Summary.txn "t1" [ Summary.call (o "A") "read" [] ];
           Summary.txn "t2" [ Summary.call (o "A") "write" [] ];
         ])
  in
  Commutativity.preload cache atlas.Atlas.table;
  check_bool "preloaded" true (Commutativity.preloaded cache <> None);
  check_bool "table path agrees" false (Commutativity.cached_test cache a1 a2);
  check_bool "atlas hits counted" true (Commutativity.atlas_hits cache > 0)

(* The compiled table must agree with the raw spec on every covered
   cell — the engine-facing soundness of the preloading path. *)
let test_table_matches_spec () =
  let tgt = Lint_targets.banking ~semantics:`Rw ~seed:3 () in
  let atlas = Atlas.build ~max_interleavings:1 tgt in
  let entries = Commutativity.table_entries atlas.Atlas.table in
  check_bool "table is populated" true (entries <> []);
  List.iter
    (fun (e : Commutativity.table_entry) ->
      let obj = o e.Commutativity.e_obj in
      let spec = Commutativity.spec_for tgt.Lint.registry obj in
      let raw =
        Commutativity.test spec
          (mk_action 1 obj e.Commutativity.e_meth)
          (mk_action 2 obj e.Commutativity.e_meth')
      in
      check_bool
        (Printf.sprintf "cell %s.%s/%s" e.Commutativity.e_obj
           e.Commutativity.e_meth e.Commutativity.e_meth')
        raw e.Commutativity.e_commutes)
    entries

(* -- engine parity ------------------------------------------------------ *)

let test_engine_parity () =
  let r = Cert_bench.atlas_run ~n:12 () in
  check_bool "identical commit/abort decisions" true r.Cert_bench.parity;
  check_bool "atlas answered probes" true (r.Cert_bench.atlas_hits > 0);
  check_bool "table covers the workload" true (r.Cert_bench.table_cells > 0);
  check_int "all chain txns commit" 12 r.Cert_bench.committed

(* -- HOT001 / COMP001 --------------------------------------------------- *)

let test_hot001 () =
  (* a conflict at Z climbing through non-commuting Y and X callers into
     a top-level dependency: inheritance never stops *)
  let txn name =
    Summary.txn name
      [
        Summary.call (o "X") "op"
          [ Summary.call (o "Y") "op" [ Summary.call (o "Z") "write" [] ] ];
      ]
  in
  let assoc =
    [ ("X", Commutativity.all_conflict); ("Y", Commutativity.all_conflict);
      ("Z", rw) ]
  in
  let atlas = Atlas.build (target "hot" assoc [ txn "t1"; txn "t2" ]) in
  check_bool "HOT001 emitted" true
    (List.exists (fun d -> d.Diagnostic.code = "HOT001") atlas.Atlas.diagnostics);
  (* a depth-1 conflict is ordinary contention, not an inheritance chain *)
  let flat name = Summary.txn name [ Summary.call (o "Z") "write" [] ] in
  let atlas' = Atlas.build (target "flat" [ ("Z", rw) ] [ flat "t1"; flat "t2" ]) in
  check_bool "no HOT001 for depth-1 conflicts" false
    (List.exists (fun d -> d.Diagnostic.code = "HOT001") atlas'.Atlas.diagnostics)

let info ?(methods = []) ?compensated name spec =
  { A.Spec_lint.obj = name; spec; methods; compensated }

let test_comp001 () =
  let summaries =
    [
      Summary.txn "t1"
        [ Summary.call (o "C") "incr" [ Summary.call (o "R") "write" [] ] ];
    ]
  in
  let assoc = [ ("C", Commutativity.all_conflict); ("R", rw) ] in
  let build objects =
    Atlas.build (target ~objects "comp" assoc summaries)
  in
  let has_comp atlas =
    List.exists (fun d -> d.Diagnostic.code = "COMP001") atlas.Atlas.diagnostics
  in
  (* R.write runs at depth 2 (under C.incr): open nesting releases its
     lock when incr completes, so it needs a compensation *)
  check_bool "COMP001 for uncompensated nested method" true
    (has_comp (build [ info ~methods:[ "write" ] ~compensated:[] "R" rw ]));
  check_bool "registered compensation silences it" false
    (has_comp
       (build [ info ~methods:[ "write" ] ~compensated:[ "write" ] "R" rw ]));
  check_bool "unknown method table stays silent" false
    (has_comp (build [ info ~methods:[ "write" ] "R" rw ]));
  (* depth-1 calls are scoped by the root: undo logs cover them *)
  let flat = [ Summary.txn "t1" [ Summary.call (o "R") "write" [] ] ] in
  check_bool "no COMP001 at depth 1" false
    (has_comp
       (Atlas.build
          (target
             ~objects:[ info ~methods:[ "write" ] ~compensated:[] "R" rw ]
             "comp-flat" [ ("R", rw) ] flat)))

(* -- Callgraph on recursive and virtual-object summaries ---------------- *)

let test_callgraph_recursive () =
  (* B.n calls back into A: a recursive (cyclic) object reference — the
     Def. 5 extension site must be found through the indirection *)
  let s =
    Summary.txn "rec"
      [
        Summary.call (o "A") "m"
          [
            Summary.call (o "B") "n"
              [ Summary.call (o "A") "m'" [ Summary.call (o "B") "n'" [] ] ];
          ];
      ]
  in
  let sites = Callgraph.extension_sites s in
  check_bool "recursive summary yields extension sites" true (sites <> []);
  let objs =
    List.sort_uniq compare
      (List.map (fun (s : Callgraph.site) -> Obj_id.original s.Callgraph.obj) sites)
  in
  check_bool "both recursive objects found" true
    (List.mem (o "A") objs && List.mem (o "B") objs)

let test_inherit_virtual_extension () =
  (* self-recursive call: the pair analysis must route the conflict
     through the Def. 5 virtual object back to the original *)
  let txn name =
    Summary.txn name
      [ Summary.call (o "A") "m" [ Summary.call (o "A") "write" [] ] ] in
  let reg = registry_of [ ("A", Commutativity.all_conflict) ] in
  let inh = Inherit.analyse reg (txn "t1") (txn "t2") in
  check_bool "extension introduced a virtual object" true
    (Extension.virtual_objects inh.Inherit.ext <> []);
  check_bool "conflict channels found" true (inh.Inherit.channels <> [])

(* -- effects summaries -------------------------------------------------- *)

let test_effects () =
  let s =
    Summary.txn "t"
      [
        Summary.call (o "A") "m"
          [ Summary.call (o "B") "n" []; Summary.call (o "B") "n" [] ];
      ]
  in
  let eff = Effects.of_summary s in
  check_int "two objects touched" 2 (List.length eff.Effects.objects);
  check_int "max depth" 2 eff.Effects.max_depth;
  let b_atoms = Effects.atoms_on eff (o "B") in
  check_int "B collapsed to one class" 1 (List.length b_atoms);
  check_int "with two occurrences" 2 (List.hd b_atoms).Effects.count;
  (* shape keys identify types across instance names *)
  let s' = Summary.txn "u" [ Summary.call (o "A") "m" [ Summary.call (o "B") "n" []; Summary.call (o "B") "n" [] ] ] in
  check_bool "same shape, different name" true
    (Effects.shape_key s = Effects.shape_key s');
  let s'' = Summary.txn "v" [ Summary.call (o "A") "m" [] ] in
  check_bool "different shape" false (Effects.shape_key s = Effects.shape_key s'')

(* -- exit codes and serialization --------------------------------------- *)

let test_exit_codes () =
  let err = Diagnostic.v ~code:"E" ~severity:Diagnostic.Error ~hint:"" "boom"
  and warn = Diagnostic.v ~code:"W" ~severity:Diagnostic.Warning ~hint:"" "hm"
  and inf = Diagnostic.v ~code:"I" ~severity:Diagnostic.Info ~hint:"" "fyi" in
  check_int "clean" 0 (Lint.exit_code []);
  check_int "warnings exit 0" 0 (Lint.exit_code [ warn; inf ]);
  check_int "errors exit 1" 1 (Lint.exit_code [ warn; err ]);
  check_int "strict promotes warnings" 1 (Lint.exit_code ~strict:true [ warn ]);
  check_int "strict ignores infos" 0 (Lint.exit_code ~strict:true [ inf ])

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let test_json () =
  let d =
    Diagnostic.v ~code:"HOT001" ~severity:Diagnostic.Warning ~obj:{|O"x|}
      ~meth:"m" ~hint:"fix\nit" "line1\tline2"
  in
  let j = Diagnostic.to_json d in
  check_bool "one line" false (String.contains j '\n');
  check_bool "quotes escaped" true (contains_sub j {|O\"x|});
  check_bool "tab escaped" true (contains_sub j {|line1\tline2|});
  check_bool "newline escaped" true (contains_sub j {|fix\nit|});
  let t1 = Summary.txn "t1" [ Summary.call (o "A") "write" []; Summary.call (o "B") "write" [] ]
  and t2 = Summary.txn "t2" [ Summary.call (o "B") "write" []; Summary.call (o "A") "write" [] ] in
  let atlas = Atlas.build (target "opposite" [ ("A", rw); ("B", rw) ] [ t1; t2 ]) in
  let j = Atlas.to_json atlas in
  check_bool "atlas json has unsafe verdict" true (contains_sub j {|"unsafe"|});
  check_bool "atlas json carries a witness" true (contains_sub j {|"witness"|});
  let dot = Atlas.to_dot atlas in
  check_bool "dot edges rendered" true (contains_sub dot "--")

let suites =
  [
    ( "atlas",
      agreement_tests
      @ [
          Alcotest.test_case "unsafe pair: minimal rejected witness" `Quick
            test_unsafe_witness;
          Alcotest.test_case "safe: no conflicting leaves" `Quick
            test_safe_no_conflict;
          Alcotest.test_case "safe: isolated channel" `Quick test_safe_isolated;
          Alcotest.test_case
            "commuting callers stop inheritance, leaf cycle still caught"
            `Quick test_safe_commuting_callers;
          Alcotest.test_case "unsafe: wedged writer" `Quick test_unsafe_wedge;
          Alcotest.test_case "unsafe without caller absorption" `Quick
            test_unsafe_without_absorption;
          Alcotest.test_case "unknown: state-reading spec" `Quick
            test_unknown_unstable;
          Alcotest.test_case "unknown: enumeration budget" `Quick
            test_unknown_budget;
          Alcotest.test_case "conflict table lookup" `Quick test_table_lookup;
          Alcotest.test_case "conflict table rejects contradictions" `Quick
            test_table_contradiction;
          Alcotest.test_case "table lookup via virtual objects" `Quick
            test_table_virtual_object;
          Alcotest.test_case "cache preload and atlas hits" `Quick
            test_preload_cache;
          Alcotest.test_case "table agrees with the raw specs" `Quick
            test_table_matches_spec;
          Alcotest.test_case "engine parity under preload_atlas" `Quick
            test_engine_parity;
          Alcotest.test_case "HOT001 inheritance hotspot" `Quick test_hot001;
          Alcotest.test_case "COMP001 missing compensation" `Quick test_comp001;
          Alcotest.test_case "callgraph on recursive summaries" `Quick
            test_callgraph_recursive;
          Alcotest.test_case "pair analysis through virtual objects" `Quick
            test_inherit_virtual_extension;
          Alcotest.test_case "effect summaries" `Quick test_effects;
          Alcotest.test_case "lint/analyze exit-code mapping" `Quick
            test_exit_codes;
          Alcotest.test_case "json serialization" `Quick test_json;
        ] );
  ]
