(* The model checker checking itself: DPOR must be a pure reduction
   (same verdicts, fewer schedules) on independent workloads, the
   planted unsound-spec mutant must be caught with a minimal witness
   that replays deterministically, and a sharded scenario must run to
   exhaustion with a clean vote-window audit. *)

module Mc = Ooser_mc.Mc
module Scenario = Ooser_mc.Scenario
module Explore = Ooser_mc.Explore

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let scenario name =
  match Scenario.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "no built-in scenario %S" name

let exhausted (e : Mc.exploration option) =
  match e with Some e -> e.Mc.stats.Explore.exhausted | None -> false

let schedules (e : Mc.exploration option) =
  match e with Some e -> e.Mc.stats.Explore.schedules | None -> 0

(* Disjoint transactions: every pair commutes, so sleep sets collapse
   the whole tree to a handful of schedules while naive enumeration
   pays the full factorial — and both must see the same verdicts. *)
let test_disjoint_reduction () =
  let r = Mc.run_scenario (scenario "disjoint") in
  check_bool "scenario ok" true r.Mc.r_ok;
  check_bool "naive exhausted" true (exhausted r.Mc.r_naive);
  check_bool "dpor exhausted" true (exhausted r.Mc.r_dpor);
  check_bool "verdict sets agree" true r.Mc.r_verdicts_agree;
  (match r.Mc.r_reduction with
  | Some f -> check_bool "strict reduction" true (f > 1.0)
  | None -> Alcotest.fail "no reduction factor measured");
  check_bool "dpor strictly fewer schedules" true
    (schedules r.Mc.r_dpor < schedules r.Mc.r_naive)

(* All-conflicting register: nothing commutes, DPOR must NOT prune —
   pruning here would be unsoundness, not reduction. *)
let test_shared_register_no_pruning () =
  let r = Mc.run_scenario (scenario "shared-register") in
  check_bool "scenario ok" true r.Mc.r_ok;
  check_int "dpor = naive when nothing commutes" (schedules r.Mc.r_naive)
    (schedules r.Mc.r_dpor)

(* The planted mutant (an all_commute spec on a non-commuting object):
   some interleaving must violate the serial-state oracle, and the
   minimised witness must reproduce the violation on replay — twice,
   identically, because a run is a pure function of its choices. *)
let test_mutant_witness_replays () =
  let sc = scenario "mutant" in
  check_bool "declared expect-failure" true sc.Scenario.expect_failure;
  let r = Mc.run_scenario sc in
  check_bool "mutant caught" true r.Mc.r_ok;
  check_bool "violations recorded" true (r.Mc.r_violations <> []);
  match r.Mc.r_witness with
  | None -> Alcotest.fail "no minimised witness"
  | Some w ->
      let _, v1 = Mc.replay sc w in
      let _, v2 = Mc.replay sc w in
      check_bool "witness replays the violation" true (v1 <> []);
      check_bool "replay is deterministic" true (v1 = v2);
      (* minimality: the witness codec round-trips, so the CLI --replay
         flag can carry it *)
      let s = Explore.trace_to_string w in
      check_bool "trace codec round-trips" true
        (Explore.trace_of_string s = Some w)

(* The doctors-on-duty write skew on the multiversion store: under
   validated occ (commute probes or the rw projection) every explored
   interleaving ends in a state some serial order produces — the
   concurrent sign-off pair conflicts, so one transaction
   validation-aborts and retries against the other's commit. *)
let occ_write_skew_absent name () =
  let r = Mc.run_scenario (scenario name) in
  check_bool "scenario ok" true r.Mc.r_ok;
  check_bool "naive exhausted" true (exhausted r.Mc.r_naive);
  check_bool "dpor exhausted" true (exhausted r.Mc.r_dpor);
  check_bool "verdict sets agree" true r.Mc.r_verdicts_agree

(* The unvalidated snapshot-isolation mutant: the restamped history
   stays green (the snapshot read is folded into the update's commit
   stamp), so only the serial-state oracle can catch the
   both-signed-off-having-seen-each-other-on state — and its minimised
   witness must replay deterministically. *)
let test_occ_si_mutant_caught () =
  let sc = scenario "occ-si-mutant" in
  check_bool "declared expect-failure" true sc.Scenario.expect_failure;
  let r = Mc.run_scenario sc in
  check_bool "mutant caught" true r.Mc.r_ok;
  check_bool "caught by the serial-state oracle" true
    (List.exists
       (fun v -> v = "state: matches no serial order of the committed set")
       r.Mc.r_violations);
  match r.Mc.r_witness with
  | None -> Alcotest.fail "no minimised witness"
  | Some w ->
      let v1, viol1 = Mc.replay sc w in
      let v2, viol2 = Mc.replay sc w in
      check_bool "witness replays the violation" true (viol1 <> []);
      check_bool "replay is deterministic" true (v1 = v2 && viol1 = viol2)

(* Crash scenario: every injected crash point must recover to a state
   the recovery oracles accept (no lost/duplicated compensation). *)
let test_crash_pair_recovers () =
  let r = Mc.run_scenario (scenario "crash-pair") in
  check_bool "scenario ok" true r.Mc.r_ok;
  check_bool "explored to exhaustion" true (exhausted r.Mc.r_naive)

(* Sharded 2PC: exhaustion over session and vote-delivery choices,
   plus the §17 vote-window audit — every recorded schedule re-run
   with full-history votes must reach the same per-transaction
   outcomes. *)
let test_shard_transfer_audit () =
  let r = Mc.run_scenario (scenario "shard-transfer") in
  check_bool "scenario ok" true r.Mc.r_ok;
  check_bool "naive exhausted" true (exhausted r.Mc.r_naive);
  match r.Mc.r_audit with
  | None -> Alcotest.fail "sharded run produced no audit"
  | Some a ->
      check_bool "schedules audited" true (a.Mc.audited > 0);
      check_int "no verdict changes under full votes" 0 a.Mc.mismatches;
      check_int "window engaged (no fallback votes)" 0 a.Mc.vote_full_votes

(* Under [`Certify] the §17 window anchors on the validation-frontier
   watermark: the audit must find every explored schedule decides
   identically under windowed and full-history votes, with no
   full-history fallback paid during the windowed exploration. *)
let test_shard_certify_windowed () =
  let r = Mc.run_scenario ~mode:`Naive (scenario "shard-certify") in
  check_bool "scenario ok" true r.Mc.r_ok;
  match r.Mc.r_audit with
  | None -> Alcotest.fail "sharded run produced no audit"
  | Some a ->
      check_bool "schedules audited" true (a.Mc.audited > 0);
      check_int "watermark window = full votes" 0 a.Mc.mismatches;
      check_int "no full-history votes while windowed" 0 a.Mc.vote_full_votes

let suites =
  [
    ( "mc",
      [
        Alcotest.test_case "disjoint: dpor is a strict reduction" `Quick
          test_disjoint_reduction;
        Alcotest.test_case "shared register: no unsound pruning" `Quick
          test_shared_register_no_pruning;
        Alcotest.test_case "mutant: minimal witness replays" `Quick
          test_mutant_witness_replays;
        Alcotest.test_case "occ write skew: commute validation aborts it"
          `Quick
          (occ_write_skew_absent "occ-write-skew");
        Alcotest.test_case "occ write skew: rw (SSI) validation aborts it"
          `Quick
          (occ_write_skew_absent "occ-write-skew-rw");
        Alcotest.test_case "occ SI mutant: serial-state oracle + witness"
          `Quick test_occ_si_mutant_caught;
        Alcotest.test_case "crash pair: recovery oracles hold" `Quick
          test_crash_pair_recovers;
        Alcotest.test_case "shard transfer: exhaustive + audit" `Quick
          test_shard_transfer_audit;
        Alcotest.test_case "shard certify: watermark window audited" `Quick
          test_shard_certify_windowed;
      ] );
  ]
