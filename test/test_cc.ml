(* Unit tests for the lock table, protocols and deadlock detection. *)

open Ooser_core
module Lock_table = Ooser_cc.Lock_table
module Protocol = Ooser_cc.Protocol
module Deadlock = Ooser_cc.Deadlock

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let o = Obj_id.v
let aid top path = Ids.Action_id.v ~top ~path

let act ?(args = []) top path obj meth =
  Action.v ~id:(aid top path) ~obj:(o obj) ~meth ~args
    ~process:(Ids.Process_id.main top)
    ()

let rw_reg =
  Commutativity.uniform (Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ])

let test_lock_table_basics () =
  let t = Lock_table.create () in
  let w1 = act 1 [ 1; 1 ] "P" "write" in
  Lock_table.add t ~action:w1 ~scope:(aid 1 [ 1 ]);
  check_int "one entry" 1 (Lock_table.total t);
  let w2 = act 2 [ 1; 1 ] "P" "write" in
  check_int "conflicting found" 1
    (List.length (Lock_table.conflicting rw_reg t w2));
  let r2 = act 2 [ 1; 2 ] "P" "read" in
  check_int "read conflicts write" 1
    (List.length (Lock_table.conflicting rw_reg t r2));
  let other = act 2 [ 1; 3 ] "Q" "write" in
  check_int "different object free" 0
    (List.length (Lock_table.conflicting rw_reg t other));
  Lock_table.release_scope t (aid 1 [ 1 ]);
  check_int "released" 0 (Lock_table.total t)

let test_lock_table_call_path () =
  let t = Lock_table.create () in
  (* an ancestor's lock never blocks its own descendants *)
  let held = act 1 [ 1 ] "P" "write" in
  Lock_table.add t ~action:held ~scope:(aid 1 []);
  let child = act 1 [ 1; 2 ] "P" "write" in
  check_int "descendant passes" 0
    (List.length (Lock_table.conflicting rw_reg t child));
  (* a sibling of the same transaction also passes, but via Def. 9
     (same process), exercised through the commutativity registry *)
  let sibling = act 1 [ 2 ] "P" "write" in
  check_int "same process passes" 0
    (List.length (Lock_table.conflicting rw_reg t sibling))

let test_release_top () =
  let t = Lock_table.create () in
  Lock_table.add t ~action:(act 1 [ 1; 1 ] "P" "write") ~scope:(aid 1 [ 1 ]);
  Lock_table.add t ~action:(act 1 [ 2; 1 ] "Q" "write") ~scope:(aid 1 []);
  Lock_table.add t ~action:(act 2 [ 1; 1 ] "R" "write") ~scope:(aid 2 [ 1 ]);
  Lock_table.release_top t 1;
  check_int "only T2's entry remains" 1 (Lock_table.total t)

let test_lock_table_class_skip () =
  (* many same-class readers: the probe for another reader must be
     dismissible with a single memoised spec test (the rw spec is
     stable), while a writer still finds every one of them *)
  let cache = Commutativity.cached rw_reg in
  let t = Lock_table.create ~cache () in
  for i = 1 to 8 do
    Lock_table.add t ~action:(act i [ 1 ] "P" "read") ~scope:(aid i [])
  done;
  check_int "readers all pass" 0
    (List.length (Lock_table.conflicting rw_reg t (act 9 [ 1 ] "P" "read")));
  check_int "writer finds all readers" 8
    (List.length (Lock_table.conflicting rw_reg t (act 9 [ 2 ] "P" "write")));
  (* a second probe of the same class pair hits the memo table *)
  check_int "repeat probe still passes" 0
    (List.length (Lock_table.conflicting rw_reg t (act 10 [ 1 ] "P" "read")));
  let hits, _ = Commutativity.cache_stats cache in
  check_bool "cache hits occur" true (hits > 0);
  (* a dead entry is gone from subsequent probes (lazy purge) *)
  Lock_table.release_top t 1;
  check_int "seven live" 7 (Lock_table.total t);
  check_int "writer finds the live ones" 7
    (List.length (Lock_table.conflicting rw_reg t (act 9 [ 3 ] "P" "write")))

let test_lock_table_escalate_index () =
  (* after escalation the lock is retained by the caller: the caller's
     other descendants pass, other transactions still conflict *)
  let t = Lock_table.create () in
  let a = act 1 [ 1; 1 ] "P" "write" in
  Lock_table.add t ~action:a ~scope:(aid 1 []);
  Lock_table.escalate t (aid 1 [ 1; 1 ]);
  Lock_table.escalate t (aid 1 [ 1 ]);
  check_int "sibling branch passes after escalation" 0
    (List.length (Lock_table.conflicting rw_reg t (act 1 [ 2; 1 ] "P" "write")));
  check_int "other txn still blocked" 1
    (List.length (Lock_table.conflicting rw_reg t (act 2 [ 1 ] "P" "write")))

let test_protocol_flat_vs_open_scope () =
  (* flat 2PL holds page locks to the end of the transaction; open
     nesting releases them when the calling subtransaction ends *)
  let w1 = act 1 [ 1; 1 ] "P" "write" in
  let w2 = act 2 [ 1; 1 ] "P" "write" in
  let sub1 = act 1 [ 1 ] "C" "incr" in
  let flat = Protocol.flat_2pl ~reg:rw_reg () in
  check_bool "flat grants first" true (Protocol.request flat w1 ~leaf:true = Protocol.Granted);
  Protocol.on_end flat sub1;
  check_bool "flat still blocks after subtxn end" true
    (match Protocol.request flat w2 ~leaf:true with
    | Protocol.Blocked _ -> true
    | Protocol.Granted -> false);
  Protocol.on_top_commit flat 1;
  check_bool "flat grants after top commit" true
    (Protocol.request flat w2 ~leaf:true = Protocol.Granted);
  let opn = Protocol.open_nested ~reg:rw_reg () in
  check_bool "open grants first" true (Protocol.request opn w1 ~leaf:true = Protocol.Granted);
  check_bool "open blocks concurrently" true
    (match Protocol.request opn w2 ~leaf:true with
    | Protocol.Blocked _ -> true
    | Protocol.Granted -> false);
  (* the page lock's scope is the calling action a1.1 *)
  Protocol.on_end opn sub1;
  check_bool "open grants after caller ends" true
    (Protocol.request opn w2 ~leaf:true = Protocol.Granted)

let test_protocol_semantic_locks () =
  (* open nesting also locks intermediate actions with their object's
     semantics *)
  let reg =
    Commutativity.fixed
      [
        ("C", Commutativity.of_commute_matrix ~name:"c" [ ("incr", "incr") ]);
      ]
  in
  let opn = Protocol.open_nested ~reg () in
  let i1 = act 1 [ 1 ] "C" "incr" in
  let i2 = act 2 [ 1 ] "C" "incr" in
  let r2 = act 2 [ 2 ] "C" "reset" in
  check_bool "incr granted" true (Protocol.request opn i1 ~leaf:false = Protocol.Granted);
  check_bool "commuting incr granted" true
    (Protocol.request opn i2 ~leaf:false = Protocol.Granted);
  check_bool "conflicting reset blocked" true
    (match Protocol.request opn r2 ~leaf:false with
    | Protocol.Blocked _ -> true
    | Protocol.Granted -> false)

let test_protocol_flat_ignores_non_leaf () =
  let flat = Protocol.flat_2pl ~reg:(Commutativity.uniform Commutativity.all_conflict) () in
  let sub1 = act 1 [ 1 ] "C" "incr" in
  let sub2 = act 2 [ 1 ] "C" "incr" in
  check_bool "non-leaf always granted" true
    (Protocol.request flat sub1 ~leaf:false = Protocol.Granted
    && Protocol.request flat sub2 ~leaf:false = Protocol.Granted)

let test_unlocked () =
  let p = Protocol.unlocked () in
  let w1 = act 1 [ 1 ] "P" "write" in
  let w2 = act 2 [ 1 ] "P" "write" in
  check_bool "grants everything" true
    (Protocol.request p w1 ~leaf:true = Protocol.Granted
    && Protocol.request p w2 ~leaf:true = Protocol.Granted)

let test_deadlock_detection () =
  check_bool "no cycle" true (Deadlock.find_cycle [ (1, [ 2 ]); (2, [ 3 ]) ] = None);
  check_bool "cycle found" true
    (Deadlock.find_cycle [ (1, [ 2 ]); (2, [ 1 ]) ] <> None);
  Alcotest.(check (option int)) "youngest is victim" (Some 2)
    (Deadlock.victim [ (1, [ 2 ]); (2, [ 1 ]) ]);
  Alcotest.(check (option int)) "three-cycle victim" (Some 7)
    (Deadlock.victim [ (3, [ 7 ]); (7, [ 5 ]); (5, [ 3 ]) ]);
  check_bool "self-wait ignored" true (Deadlock.find_cycle [ (1, [ 1 ]) ] = None)

let suites =
  [
    ( "cc",
      [
        Alcotest.test_case "lock table basics" `Quick test_lock_table_basics;
        Alcotest.test_case "call-path compatibility" `Quick test_lock_table_call_path;
        Alcotest.test_case "release by transaction" `Quick test_release_top;
        Alcotest.test_case "class-bucket skip and lazy purge" `Quick
          test_lock_table_class_skip;
        Alcotest.test_case "escalation via retainer index" `Quick
          test_lock_table_escalate_index;
        Alcotest.test_case "flat vs open lock scopes" `Quick
          test_protocol_flat_vs_open_scope;
        Alcotest.test_case "semantic locks at intermediate levels" `Quick
          test_protocol_semantic_locks;
        Alcotest.test_case "flat ignores non-leaf actions" `Quick
          test_protocol_flat_ignores_non_leaf;
        Alcotest.test_case "unlocked grants all" `Quick test_unlocked;
        Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
      ] );
  ]
