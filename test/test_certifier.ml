(* Tests for the optimistic certifier (Engine config.certify): commit-time
   oo-serializability validation with rollback and retry — the paper's §6
   direction for protocols that guarantee oo-serializability.

   Lock-free execution admits dirty reads of uncommitted state, so all
   updates here use LOGICAL undo (inverse deltas) as Engine.config.certify
   requires; read-modify-write registers are not value-safe under this
   certifier (they would need deferred updates / versioning). *)

open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let o = Obj_id.v

(* A cell whose adds CONFLICT order-wise (so certification has real work)
   but undo logically (so rollback is value-safe without locks). *)
let register_cell db name init =
  let state = ref init in
  let read _ _ = Value.int !state in
  let add ctx args =
    match args with
    | [ Value.Int v ] ->
        Runtime.on_undo ctx (fun () -> state := !state - v);
        state := !state + v;
        Value.unit
    | _ -> invalid_arg "add"
  in
  Database.register db (o name) ~spec:Commutativity.all_conflict
    [ ("read", Database.primitive read); ("add", Database.primitive add) ];
  state

let certified_config ?(seed = 1) () =
  let protocol = Protocol.unlocked () in
  {
    (Engine.default_config protocol) with
    Engine.certify = true;
    Engine.strategy = Engine.Random_pick (Rng.create ~seed);
  }

let test_certifier_accepts_clean_runs () =
  let db = Database.create () in
  ignore (register_cell db "A" 0);
  ignore (register_cell db "B" 0);
  let t1 ctx =
    ignore (Runtime.call ctx (o "A") "add" [ Value.int 1 ]);
    Value.unit
  in
  let t2 ctx =
    ignore (Runtime.call ctx (o "B") "add" [ Value.int 2 ]);
    Value.unit
  in
  let config = certified_config () in
  let out =
    Engine.run ~config db ~protocol:config.Engine.protocol
      [ (1, "t1", t1); (2, "t2", t2) ]
  in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_bool "no certification failures" true
    (not (List.mem_assoc "certification-failures" out.Engine.metrics));
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_certifier_rejects_crossing_updates () =
  (* T1 touches A then B, T2 touches B then A, all conflicting, without
     locks: crossing interleavings are NOT serializable and must be
     caught at commit and retried until the committed history checks *)
  let db = Database.create () in
  let a = register_cell db "A" 0 in
  let b = register_cell db "B" 0 in
  let t1 ctx =
    ignore (Runtime.call ctx (o "A") "add" [ Value.int 1 ]);
    ignore (Runtime.call ctx (o "B") "add" [ Value.int 1 ]);
    Value.unit
  in
  let t2 ctx =
    ignore (Runtime.call ctx (o "B") "add" [ Value.int 1 ]);
    ignore (Runtime.call ctx (o "A") "add" [ Value.int 1 ]);
    Value.unit
  in
  let fired = ref false in
  for seed = 1 to 10 do
    let db2 = Database.create () in
    let a2 = register_cell db2 "A" 0 in
    let b2 = register_cell db2 "B" 0 in
    ignore (a2, b2);
    ignore db;
    let config = certified_config ~seed () in
    let out =
      Engine.run ~config db2 ~protocol:config.Engine.protocol
        [
          (1, "t1", fun ctx ->
            ignore (Runtime.call ctx (o "A") "add" [ Value.int 1 ]);
            ignore (Runtime.call ctx (o "B") "add" [ Value.int 1 ]);
            Value.unit);
          (2, "t2", fun ctx ->
            ignore (Runtime.call ctx (o "B") "add" [ Value.int 1 ]);
            ignore (Runtime.call ctx (o "A") "add" [ Value.int 1 ]);
            Value.unit);
        ]
    in
    check_int "all committed eventually" 2 (List.length out.Engine.committed);
    check_int "A exact" 2 !a2;
    check_int "B exact" 2 !b2;
    check_bool "final history oo-serializable" true
      (Serializability.oo_serializable out.Engine.history);
    if
      (try List.assoc "certification-failures" out.Engine.metrics
       with Not_found -> 0)
      > 0
    then fired := true
  done;
  ignore (t1, t2, a, b);
  check_bool "certification fired on some seed" true !fired

let test_certifier_banking_property () =
  (* random banking under the certifier: totals preserved, histories
     serializable *)
  let ok = ref true in
  for seed = 1 to 10 do
    let p = { Banking.default_params with Banking.n_txns = 5 } in
    let db, counters = Banking.setup ~semantics:`Rw p in
    let txns = Banking.transactions ~rng:(Rng.create ~seed) p in
    let config = certified_config ~seed:(seed * 7) () in
    let out = Engine.run ~config db ~protocol:config.Engine.protocol txns in
    if
      (not (Serializability.oo_serializable out.Engine.history))
      || Banking.total_balance counters <> p.Banking.accounts * p.Banking.initial
    then ok := false
  done;
  check_bool "all seeds clean" true !ok

let test_certifier_rollback_restores_state () =
  (* with a tiny restart budget some transactions may fail permanently:
     whatever happens, the state must equal the committed effects *)
  let db = Database.create () in
  let a = register_cell db "A" 0 in
  let b = register_cell db "B" 0 in
  let body flip ctx =
    let first, second = if flip then ("B", "A") else ("A", "B") in
    ignore (Runtime.call ctx (o first) "add" [ Value.int 1 ]);
    ignore (Runtime.call ctx (o second) "add" [ Value.int 1 ]);
    Value.unit
  in
  let protocol = Protocol.unlocked () in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.certify = true;
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:2);
      Engine.max_restarts = 1;
    }
  in
  let out =
    Engine.run ~config db ~protocol
      [ (1, "t1", body false); (2, "t2", body true); (3, "t3", body false);
        (4, "t4", body true) ]
  in
  let n = List.length out.Engine.committed in
  check_int "A equals committed count" n !a;
  check_int "B equals committed count" n !b;
  check_bool "committed history serializable" true
    (Serializability.oo_serializable out.Engine.history)

let metric out name =
  try List.assoc name out.Engine.metrics with Not_found -> 0

let test_certifier_uses_incremental_path () =
  (* stable specs end to end: every commit must certify incrementally,
     never via the from-scratch oracle *)
  let db = Database.create () in
  ignore (register_cell db "A" 0);
  ignore (register_cell db "B" 0);
  let config = certified_config ~seed:3 () in
  let out =
    Engine.run ~config db ~protocol:config.Engine.protocol
      [
        (1, "t1", fun ctx ->
          ignore (Runtime.call ctx (o "A") "add" [ Value.int 1 ]);
          ignore (Runtime.call ctx (o "B") "add" [ Value.int 1 ]);
          Value.unit);
        (2, "t2", fun ctx ->
          ignore (Runtime.call ctx (o "B") "add" [ Value.int 1 ]);
          Value.unit);
      ]
  in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_bool "incremental path taken" true (metric out "cert-incremental" > 0);
  check_int "oracle never consulted" 0 (metric out "cert-oracle")

let test_certifier_oracle_mode_agrees () =
  (* certify_oracle forces the from-scratch checker; under the same seed
     the two modes must take the same decisions commit for commit *)
  for seed = 1 to 8 do
    let run ~oracle =
      let db = Database.create () in
      let a = register_cell db "A" 0 in
      let b = register_cell db "B" 0 in
      let config =
        { (certified_config ~seed ()) with Engine.certify_oracle = oracle }
      in
      let out =
        Engine.run ~config db ~protocol:config.Engine.protocol
          [
            (1, "t1", fun ctx ->
              ignore (Runtime.call ctx (o "A") "add" [ Value.int 1 ]);
              ignore (Runtime.call ctx (o "B") "add" [ Value.int 1 ]);
              Value.unit);
            (2, "t2", fun ctx ->
              ignore (Runtime.call ctx (o "B") "add" [ Value.int 1 ]);
              ignore (Runtime.call ctx (o "A") "add" [ Value.int 1 ]);
              Value.unit);
          ]
      in
      (List.length out.Engine.committed, !a, !b,
       metric out "certification-failures")
    in
    let inc = run ~oracle:false and orc = run ~oracle:true in
    check_bool (Fmt.str "seed %d: modes agree" seed) true (inc = orc)
  done

let test_certifier_unstable_spec_falls_back () =
  (* a state-reading spec (stable = false) makes cached decisions
     unsound: the engine must abandon the incremental certifier and
     certify with the oracle *)
  let db = Database.create () in
  ignore (register_cell db "A" 0);
  let state = ref 0 in
  let add ctx args =
    match args with
    | [ Value.Int v ] ->
        Runtime.on_undo ctx (fun () -> state := !state - v);
        state := !state + v;
        Value.unit
    | _ -> invalid_arg "add"
  in
  (* same decision table as all_conflict, but declared state-reading *)
  let moody =
    Commutativity.make ~name:"moody" (fun _ _ -> false)
  in
  Database.register db (o "M") ~spec:moody
    [ ("add", Database.primitive add) ];
  let config = certified_config ~seed:5 () in
  let out =
    Engine.run ~config db ~protocol:config.Engine.protocol
      [
        (1, "t1", fun ctx ->
          ignore (Runtime.call ctx (o "M") "add" [ Value.int 1 ]);
          Value.unit);
        (2, "t2", fun ctx ->
          ignore (Runtime.call ctx (o "A") "add" [ Value.int 1 ]);
          Value.unit);
      ]
  in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_bool "fell back to the oracle" true (metric out "cert-oracle" > 0);
  check_int "incremental path never used" 0 (metric out "cert-incremental")

let suites =
  [
    ( "certifier",
      [
        Alcotest.test_case "accepts clean runs" `Quick
          test_certifier_accepts_clean_runs;
        Alcotest.test_case "rejects crossing updates" `Quick
          test_certifier_rejects_crossing_updates;
        Alcotest.test_case "banking under certification" `Quick
          test_certifier_banking_property;
        Alcotest.test_case "rollback restores state" `Quick
          test_certifier_rollback_restores_state;
        Alcotest.test_case "incremental path taken on stable specs" `Quick
          test_certifier_uses_incremental_path;
        Alcotest.test_case "oracle mode agrees with incremental" `Quick
          test_certifier_oracle_mode_agrees;
        Alcotest.test_case "unstable spec forces oracle fallback" `Quick
          test_certifier_unstable_spec_falls_back;
      ] );
  ]
