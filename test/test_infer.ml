(* Spec inference (DESIGN §16): the oracle-backed audit of the shipped
   ADT specs, the INFER001 mutation gate (a planted unsound escrow cell
   must be flagged with a replayable witness the checker rejects), the
   INFER002 conservative gate (a planted over-conservative kv cell must
   be reported), the qcheck oracle-agreement property (no inferred
   commuting cell is refuted by the semantics at random states), the
   inferred-table compile/lookup path, and the named Invalid_argument
   diagnostics of the matrix/rw spec constructors. *)

open Ooser_core
open Ooser_workload
module A = Ooser_analysis
module Infer = A.Infer
module Semantics = A.Semantics
module Diagnostic = A.Diagnostic
module Lint = A.Lint
module Spec_lint = A.Spec_lint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The full audit of the shipped ADTs is deterministic and not cheap
   (thousands of oracle executions) — run it once and share it. *)
let adts_report = lazy (Infer.run (Lint_targets.adts ()))

let find_cells (r : Infer.t) spec_name meth meth' =
  List.concat_map
    (fun (g : Infer.group) ->
      if String.equal g.Infer.spec_name spec_name then
        List.filter
          (fun (c : Infer.cell) ->
            (String.equal c.Infer.meth meth
            && String.equal c.Infer.meth' meth')
            || (String.equal c.Infer.meth meth'
               && String.equal c.Infer.meth' meth))
          g.Infer.cells
      else [])
    r.Infer.groups

let cell_with_rel cells rel =
  List.find_opt (fun (c : Infer.cell) -> c.Infer.rel = rel) cells

let commutes (c : Infer.cell) =
  match c.Infer.verdict with Infer.Commutes _ -> true | _ -> false

let conflicts (c : Infer.cell) =
  match c.Infer.verdict with Infer.Conflicts _ -> true | _ -> false

let expect_cell r spec meth meth' rel what pred =
  match cell_with_rel (find_cells r spec meth meth') rel with
  | Some c -> check_bool what true (pred c)
  | None -> Alcotest.failf "missing cell %s %s/%s" spec meth meth'

(* --- the shipped specs audit clean ---------------------------------- *)

let test_shipped_specs_clean () =
  let r = Lazy.force adts_report in
  check_int "no INFER001 on shipped specs" 0
    (List.length (Diagnostic.errors r.Infer.diagnostics));
  check_int "no INFER002 on shipped specs" 0
    (List.length (Diagnostic.warnings r.Infer.diagnostics));
  check_int "strict gate passes" 0
    (Lint.exit_code ~strict:true r.Infer.diagnostics);
  check_bool "coverage is counted" true
    (r.Infer.decided > 0 && r.Infer.decided <= r.Infer.total);
  check_bool "nothing unsound" true (Infer.unsound r = []);
  check_bool "nothing conservative" true (Infer.conservative r = [])

let test_shipped_verdicts () =
  let r = Lazy.force adts_report in
  let kv = "keyed(kv-set)" in
  expect_cell r kv "insert" "insert" Infer.Same_args
    "same-key inserts commute" commutes;
  expect_cell r kv "insert" "insert" Infer.Distinct
    "distinct-key inserts commute" commutes;
  expect_cell r kv "remove" "remove" Infer.Same_args
    "same-key removes conflict (dropped count is observable)" conflicts;
  expect_cell r "fifo-queue" "enqueue" "enqueue" Infer.Same_args
    "same-value enqueues commute" commutes;
  expect_cell r "fifo-queue" "enqueue" "enqueue" Infer.Distinct
    "distinct-value enqueues conflict" conflicts;
  expect_cell r "fifo-queue" "dequeue" "dequeue" Infer.Same_args
    "dequeues conflict" conflicts;
  expect_cell r "directory" "bind" "bind" Infer.Same_key
    "same-key binds conflict" conflicts;
  expect_cell r "directory" "lookup" "lookup" Infer.Distinct
    "distinct lookups commute" commutes

(* A conflict witness is minimal: the kv remove/remove refutation is the
   singleton state, and the directory same-args bind/bind refutation is
   labelled abort-unsafe — both orders forward-commute, only the
   captured-old-binding undo distinguishes them. *)
let test_witness_details () =
  let r = Lazy.force adts_report in
  (match
     cell_with_rel
       (find_cells r "keyed(kv-set)" "remove" "remove")
       Infer.Same_args
   with
  | Some { Infer.verdict = Infer.Conflicts w; _ } ->
      check_bool "minimal witness state" true
        (Value.equal w.Infer.w_state
           (Value.list [ Value.pair (Value.str "a") (Value.int 1) ]))
  | _ -> Alcotest.fail "kv remove/remove should conflict");
  match
    cell_with_rel (find_cells r "directory" "bind" "bind") Infer.Same_args
  with
  | Some { Infer.verdict = Infer.Conflicts w; _ } ->
      check_bool "refutation names abort safety" true
        (let sub = "abort" in
         let n = String.length sub and m = String.length w.Infer.w_reason in
         let rec go i =
           i + n <= m && (String.sub w.Infer.w_reason i n = sub || go (i + 1))
         in
         go 0);
      check_bool "both orders forward-commute at the witness" true
        (Semantics.forward_at Semantics.directory w.Infer.w_state
           ("bind", w.Infer.w_args)
           ("bind", w.Infer.w_args'))
  | _ -> Alcotest.fail "dir same-args bind/bind should conflict"

(* --- the compiled argument-independent table ------------------------ *)

let act top obj meth args =
  Action.v
    ~id:(Ids.Action_id.v ~top ~path:[ 1 ])
    ~obj:(Obj_id.v obj) ~meth ~args
    ~process:(Ids.Process_id.main top)
    ()

let test_inferred_table () =
  let r = Lazy.force adts_report in
  let t = r.Infer.table in
  let objs, cells = Commutativity.table_stats t in
  check_bool "table covers stable specs" true (objs >= 2 && cells > 0);
  let a = Value.str "a" and b = Value.str "b" in
  check_bool "insert/insert compiled commuting" true
    (Commutativity.table_lookup t
       (act 1 "set" "insert" [ a ])
       (act 2 "set" "insert" [ b ])
    = Some true);
  check_bool "list/bind compiled conflicting" true
    (Commutativity.table_lookup t
       (act 1 "dir" "list" [])
       (act 2 "dir" "bind" [ a; Value.int 1 ])
    = Some false);
  check_bool "argument-dependent insert/remove not covered" true
    (Commutativity.table_lookup t
       (act 1 "set" "insert" [ a ])
       (act 2 "set" "remove" [ a ])
    = None);
  check_bool "unstable escrow spec not covered" true
    (Commutativity.table_lookup t
       (act 1 "counter" "read" [])
       (act 2 "counter" "read" [])
    = None)

(* Preloading the inferred table into a cache must change where answers
   come from, never what they are — and it must actually be consulted
   for the stable keyed specs (the Engine.preload_atlas path). *)
let test_table_cache_parity () =
  let r = Lazy.force adts_report in
  let target = Lint_targets.adts () in
  let reg = target.Lint.registry in
  let plain = Commutativity.cached reg in
  let loaded = Commutativity.cached reg in
  Commutativity.preload loaded r.Infer.table;
  let a = Value.str "a" and b = Value.str "b" in
  let pairs =
    [
      (act 1 "set" "insert" [ a ], act 2 "set" "insert" [ b ]);
      (act 1 "set" "insert" [ a ], act 2 "set" "remove" [ a ]);
      (act 1 "set" "contains" [ a ], act 2 "set" "cardinal" []);
      (act 1 "dir" "list" [], act 2 "dir" "bind" [ a; Value.int 1 ]);
      (act 1 "dir" "lookup" [ a ], act 2 "dir" "lookup" [ b ]);
      (act 1 "counter" "read" [], act 2 "counter" "read" []);
    ]
  in
  List.iter
    (fun (p, q) ->
      check_bool "preloaded cache agrees with probe cache" true
        (Commutativity.cached_test plain p q
        = Commutativity.cached_test loaded p q))
    pairs;
  check_bool "inferred table answered some decisions" true
    (Commutativity.atlas_hits loaded > 0)

(* --- INFER001: a planted unsound escrow cell ------------------------ *)

let escrow_mutant =
  (* claims the escrow reads commute with the updates — false: read
     before and after an incr observes different values *)
  Commutativity.predicate ~name:"escrow-counter"
    ~vocab:[ "incr"; "decr"; "read" ]
    (fun x y ->
      match (Action.meth x, Action.meth y) with
      | "read", _ | _, "read" -> true
      | _ -> false)

let mutant_target () =
  Lint.target ~name:"escrow-mutant"
    ~objects:
      [
        {
          Spec_lint.obj = "counter";
          spec = escrow_mutant;
          methods = [ "incr"; "decr"; "read" ];
          compensated = Some [];
        };
      ]
    (Commutativity.fixed [ ("counter", escrow_mutant) ])

let test_escrow_mutation_flagged () =
  let r = Infer.run (mutant_target ()) in
  check_bool "INFER001 raised" true
    (List.exists
       (fun (d : Diagnostic.t) -> String.equal d.Diagnostic.code "INFER001")
       (Diagnostic.errors r.Infer.diagnostics));
  check_bool "no spurious INFER002" true
    (Diagnostic.warnings r.Infer.diagnostics = []);
  check_bool "gate fails even without --strict" true
    (Lint.exit_code r.Infer.diagnostics <> 0);
  match Infer.unsound r with
  | [] -> Alcotest.fail "unsound cell list is empty"
  | (spec_name, cell) :: _ -> (
      check_bool "flagged on the escrow spec" true
        (String.equal spec_name "escrow-counter");
      match cell.Infer.verdict with
      | Infer.Conflicts w ->
          (* the oracle replays the witness: both calls at the witness
             state do not commute *)
          check_bool "oracle refutes the witness" false
            (Semantics.commute_at Semantics.counter w.Infer.w_state
               (cell.Infer.meth, w.Infer.w_args)
               (cell.Infer.meth', w.Infer.w_args'));
          (* and the witness interleaving, run under a registry where the
             pair conflicts, is rejected by the serializability checker *)
          let h =
            Infer.witness_history ~obj:"counter" ~meth:cell.Infer.meth
              ~args:w.Infer.w_args ~meth':cell.Infer.meth'
              ~args':w.Infer.w_args'
          in
          check_bool "witness history is well-formed" true
            (History.validate h = Ok ());
          check_bool "checker rejects the witness interleaving" false
            (Serializability.check h).Serializability.oo_serializable;
          (* sanity: the same interleaving under the mutant's claim is
             accepted — exactly the unsoundness INFER001 guards against *)
          let lie =
            History.v ~tops:(History.tops h) ~order:(History.order h)
              ~commut:(Commutativity.uniform Commutativity.all_commute)
          in
          check_bool "mutant's claim would certify it" true
            (Serializability.check lie).Serializability.oo_serializable
      | _ -> Alcotest.fail "unsound cell should carry a conflict witness")

(* --- INFER002: a planted over-conservative kv cell ------------------ *)

let kv_conservative =
  (* the shipped kv-set matrix with contains/contains dropped: sound but
     needlessly conservative — two same-key membership reads commute *)
  Commutativity.by_key ~key_of:Commutativity.first_arg
    (Commutativity.predicate ~stable:true ~name:"kv-set"
       ~vocab:[ "insert"; "remove"; "contains"; "cardinal" ]
       (fun x y ->
         match (Action.meth x, Action.meth y) with
         | "insert", "insert" -> true
         | "cardinal", "cardinal" | "cardinal", "contains"
         | "contains", "cardinal" ->
             true
         | _ -> false))

let test_conservative_flagged () =
  let target =
    Lint.target ~name:"kv-conservative"
      ~objects:
        [
          {
            Spec_lint.obj = "set";
            spec = kv_conservative;
            methods = [ "insert"; "remove"; "contains"; "cardinal" ];
            compensated = Some [];
          };
        ]
      (Commutativity.fixed [ ("set", kv_conservative) ])
  in
  let r = Infer.run target in
  check_bool "no INFER001" true (Diagnostic.errors r.Infer.diagnostics = []);
  check_bool "INFER002 raised" true
    (List.exists
       (fun (d : Diagnostic.t) -> String.equal d.Diagnostic.code "INFER002")
       (Diagnostic.warnings r.Infer.diagnostics));
  check_int "non-strict gate still passes" 0
    (Lint.exit_code r.Infer.diagnostics);
  check_bool "strict gate fails" true
    (Lint.exit_code ~strict:true r.Infer.diagnostics <> 0);
  check_bool "the lost cell is same-key contains/contains" true
    (List.exists
       (fun (_, (c : Infer.cell)) ->
         String.equal c.Infer.meth "contains"
         && String.equal c.Infer.meth' "contains"
         && c.Infer.rel = Infer.Same_args && commutes c)
       (Infer.conservative r))

(* --- qcheck: inferred commuting cells agree with the oracle --------- *)

(* The soundness property behind "never falsely commutative": every cell
   the audit published as Commutes keeps commuting at fresh random
   states, for every argument pair in the cell's class.  This re-checks
   the verdicts with states the inference run never enumerated. *)
let oracle_agreement_prop (model : Semantics.model) =
  let r = Lazy.force adts_report in
  let commuting =
    List.concat_map
      (fun (g : Infer.group) ->
        if String.equal g.Infer.spec_name model.Semantics.spec_name then
          List.filter commutes g.Infer.cells
        else [])
      r.Infer.groups
  in
  QCheck.Test.make ~count:100
    ~name:("inferred commutes are sound: " ^ model.Semantics.model_name)
    (QCheck.make model.Semantics.gen_state)
    (fun state ->
      List.for_all
        (fun (c : Infer.cell) ->
          let vs = Semantics.vectors model c.Infer.meth in
          let vs' = Semantics.vectors model c.Infer.meth' in
          List.for_all
            (fun v ->
              List.for_all
                (fun v' ->
                  (not (Infer.rel_of v v' = c.Infer.rel))
                  || Semantics.commute_at model state (c.Infer.meth, v)
                       (c.Infer.meth', v'))
                vs')
            vs)
        commuting)

(* --- named Invalid_argument diagnostics (satellite 1) --------------- *)

let raises_invalid f =
  match f () with
  | exception Invalid_argument m -> m
  | _ -> Alcotest.fail "expected Invalid_argument"

let has sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_invalid_argument_messages () =
  let m =
    raises_invalid (fun () ->
        Commutativity.of_conflict_matrix ~name:"pairs"
          [ ("a", "b"); ("b", "a") ])
  in
  check_bool "conflict matrix names the spec" true (has "spec \"pairs\"" m);
  check_bool "conflict matrix names the pair" true
    (has "duplicate pair (a, b)" m);
  let m =
    raises_invalid (fun () ->
        Commutativity.of_commute_matrix ~name:"cm" [ ("x", "y"); ("x", "y") ])
  in
  check_bool "commute matrix names the ctor" true
    (has "of_commute_matrix" m && has "spec \"cm\"" m);
  let m =
    raises_invalid (fun () ->
        Commutativity.rw_named ~name:"pg" ~reads:[ "get" ]
          ~writes:[ "put"; "get" ])
  in
  check_bool "rw names the read/write overlap" true
    (has "spec \"pg\"" m && has "\"get\" is both a read and a write" m);
  let m =
    raises_invalid (fun () ->
        Commutativity.rw_named ~name:"pg" ~reads:[ "get"; "get" ] ~writes:[])
  in
  check_bool "rw names the duplicate method" true
    (has "\"get\" listed twice" m);
  let m =
    raises_invalid (fun () ->
        Commutativity.rw ~reads:[ "touch" ] ~writes:[ "touch" ])
  in
  check_bool "unnamed rw keeps its default spec name" true
    (has "spec \"read-write\"" m)

let suites =
  [
    ( "infer",
      [
        Alcotest.test_case "shipped ADT specs audit clean" `Quick
          test_shipped_specs_clean;
        Alcotest.test_case "shipped verdicts match the semantics" `Quick
          test_shipped_verdicts;
        Alcotest.test_case "conflict witnesses are minimal and labelled"
          `Quick test_witness_details;
        Alcotest.test_case "argument-independent cells compile to a table"
          `Quick test_inferred_table;
        Alcotest.test_case "preloaded inferred table: parity and hits" `Quick
          test_table_cache_parity;
        Alcotest.test_case "planted unsound escrow cell raises INFER001"
          `Quick test_escrow_mutation_flagged;
        Alcotest.test_case "planted conservative kv cell raises INFER002"
          `Quick test_conservative_flagged;
        Alcotest.test_case "spec constructors raise named Invalid_argument"
          `Quick test_invalid_argument_messages;
        QCheck_alcotest.to_alcotest (oracle_agreement_prop Semantics.counter);
        QCheck_alcotest.to_alcotest (oracle_agreement_prop Semantics.kv_set);
        QCheck_alcotest.to_alcotest (oracle_agreement_prop Semantics.fifo);
        QCheck_alcotest.to_alcotest
          (oracle_agreement_prop Semantics.directory);
      ] );
  ]
