(* Offline certification: trace format round-trip and torn tails, the
   segmenter's quiescent/heuristic cuts, and the headline soundness
   property — [Certify.run] agrees with the from-scratch
   [Serializability.check] oracle on random histories, including a
   planted cross-segment cycle only the frontier stitching can see. *)

open Ooser_core
open Ooser_certify
module Rs = Ooser_workload.Random_schedules
open Ids

let tmp_trace () =
  let path = Filename.temp_file "ooser_trace" ".bin" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* ---------- little builders ---------- *)

let rw_registry () = Bench_trace.registry ()

(* flat transaction [top] doing [(key, write?)] ops at the given stamps *)
let flat ~top ops stamps =
  let root =
    Action.v
      ~id:(Action_id.root top)
      ~obj:(Obj_id.v "S") ~meth:"txn"
      ~process:(Process_id.main top)
      ()
  in
  let children =
    List.mapi
      (fun k (key, is_w) ->
        Call_tree.v
          (Action.v
             ~id:(Action_id.child (Action_id.root top) (k + 1))
             ~obj:(Obj_id.v (Printf.sprintf "K%d" key))
             ~meth:(if is_w then "w" else "r")
             ~process:(Process_id.main top)
             ())
          [])
      ops
  in
  {
    Trace.top;
    tree = Call_tree.seq root children;
    prims =
      List.mapi
        (fun k s -> (Action_id.child (Action_id.root top) (k + 1), s))
        stamps;
  }

let write_records path records =
  let w = Trace.create_writer ~registry:"bench:rw" path in
  List.iter (Trace.append w) records;
  Trace.close w

(* ---------- trace format ---------- *)

let test_roundtrip () =
  let path = tmp_trace () in
  let r1 = flat ~top:1 [ (0, true); (1, false) ] [ 1; 4 ] in
  let r2 = flat ~top:2 [ (1, true) ] [ 2 ] in
  write_records path [ r1; r2 ];
  let t = Trace.load path in
  Alcotest.(check string) "registry" "bench:rw" (Trace.registry_name t);
  Alcotest.(check int) "length" 2 (Trace.length t);
  let e = (Trace.entries t).(0) in
  Alcotest.(check int) "top" 1 e.Trace.e_top;
  Alcotest.(check int) "min" 1 e.Trace.min_stamp;
  Alcotest.(check int) "max" 4 e.Trace.max_stamp;
  Alcotest.(check int) "depth" 1 e.Trace.max_depth;
  let r1' = Trace.record t 0 in
  Alcotest.(check int) "record top" 1 r1'.Trace.top;
  Alcotest.(check int) "prims" 2 (List.length r1'.Trace.prims);
  Alcotest.(check bool) "tree equal" true
    (Call_tree.act r1'.Trace.tree |> Action.meth = "txn");
  let prim = List.hd (Call_tree.children r1'.Trace.tree) in
  Alcotest.(check string) "child obj" "K0"
    (Obj_id.name (Action.obj (Call_tree.act prim)));
  Alcotest.(check string) "child meth" "w" (Action.meth (Call_tree.act prim))

let test_torn_tail () =
  let path = tmp_trace () in
  write_records path
    [ flat ~top:1 [ (0, true) ] [ 1 ]; flat ~top:2 [ (0, true) ] [ 2 ] ];
  let whole = In_channel.with_open_bin path In_channel.input_all in
  (* truncate mid-way through the last frame: the reader must keep the
     stable prefix *)
  let torn = String.sub whole 0 (String.length whole - 5) in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc torn);
  let t = Trace.load path in
  Alcotest.(check int) "torn tail truncated" 1 (Trace.length t);
  Alcotest.(check int) "surviving top" 1 (Trace.record t 0).Trace.top

let test_not_a_trace () =
  let path = tmp_trace () in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "garbage that is not a trace at all");
  Alcotest.check_raises "bad magic" (Failure "Trace: empty or torn header")
    (fun () -> ignore (Trace.load path))

let test_trace_zero_byte () =
  let path = tmp_trace () in
  Out_channel.with_open_bin path (fun _ -> ());
  (* a 0-byte file has no header frame at all — must refuse, not return
     an empty trace that would "certify" vacuously *)
  Alcotest.check_raises "zero-byte file"
    (Failure "Trace: empty or torn header") (fun () ->
      ignore (Trace.load path))

let test_trace_header_only () =
  let path = tmp_trace () in
  (* a recorder that crashed before its first commit leaves exactly the
     header: a legitimate, empty trace *)
  Trace.close (Trace.create_writer ~registry:"bench:rw" path);
  let t = Trace.load path in
  Alcotest.(check string) "registry survives" "bench:rw" (Trace.registry_name t);
  Alcotest.(check int) "no records" 0 (Trace.length t);
  let plan = Segment.plan t ~target:1 in
  Alcotest.(check int) "no segments" 0 (Array.length plan.Segment.segs);
  Alcotest.(check int) "no chains" 0 (Array.length plan.Segment.chains)

(* ---------- segmenter ---------- *)

let test_segment_quiescent () =
  let path = tmp_trace () in
  (* three serial transactions: every boundary is quiescent *)
  write_records path
    [
      flat ~top:1 [ (0, true) ] [ 1 ];
      flat ~top:2 [ (0, true) ] [ 2 ];
      flat ~top:3 [ (0, true) ] [ 3 ];
    ];
  let t = Trace.load path in
  let plan = Segment.plan t ~target:1 in
  Alcotest.(check int) "three segments" 3 (Array.length plan.Segment.segs);
  Array.iter
    (fun (s : Segment.seg) ->
      Alcotest.(check bool) "quiescent" true
        (s.Segment.cut_before = Segment.Quiescent))
    plan.Segment.segs;
  Alcotest.(check int) "three chains" 3 (Array.length plan.Segment.chains)

let test_segment_heuristic () =
  let path = tmp_trace () in
  (* T1 spans everything: no quiescent point exists, so a target of 1
     must fall back to heuristic cuts and one chain *)
  write_records path
    [
      flat ~top:1 [ (9, true); (9, true) ] [ 1; 100 ];
      flat ~top:2 [ (0, true) ] [ 2 ];
      flat ~top:3 [ (1, true) ] [ 3 ];
      flat ~top:4 [ (2, true) ] [ 4 ];
      flat ~top:5 [ (3, true) ] [ 5 ];
      flat ~top:6 [ (4, true) ] [ 6 ];
      flat ~top:7 [ (5, true) ] [ 7 ];
      flat ~top:8 [ (6, true) ] [ 8 ];
      flat ~top:9 [ (7, true) ] [ 9 ];
    ];
  let t = Trace.load path in
  let plan = Segment.plan t ~target:2 in
  Alcotest.(check bool) "several segments" true
    (Array.length plan.Segment.segs > 1);
  Alcotest.(check int) "one chain" 1 (Array.length plan.Segment.chains);
  let heuristic =
    Array.to_list plan.Segment.segs
    |> List.filter (fun s -> s.Segment.cut_before = Segment.Heuristic)
  in
  Alcotest.(check bool) "heuristic cuts used" true (heuristic <> [])

(* every boundary quiescent AND target 1: n degenerate one-transaction
   segments, each trivially serializable on its own, one chain each —
   the planner must not merge, skip or mis-chain them *)
let test_segment_degenerate_singletons () =
  let path = tmp_trace () in
  write_records path [ flat ~top:1 [ (0, true); (1, false) ] [ 1; 2 ] ];
  let t1 = Trace.load path in
  let plan1 = Segment.plan t1 ~target:1 in
  Alcotest.(check int) "single record: one segment" 1
    (Array.length plan1.Segment.segs);
  let s = plan1.Segment.segs.(0) in
  Alcotest.(check int) "covers lo" 0 s.Segment.lo;
  Alcotest.(check int) "covers hi" 1 s.Segment.hi;
  Alcotest.(check bool) "quiescent lead-in" true
    (s.Segment.cut_before = Segment.Quiescent);
  Alcotest.(check int) "single record: one chain" 1
    (Array.length plan1.Segment.chains);
  (* four serial writers, target 1: four 1-txn segments, four chains,
     and certification over them still reaches the right verdict *)
  write_records path
    (List.init 4 (fun k -> flat ~top:(k + 1) [ (0, true) ] [ k + 1 ]));
  let t4 = Trace.load path in
  let plan4 = Segment.plan t4 ~target:1 in
  Alcotest.(check int) "four 1-txn segments" 4
    (Array.length plan4.Segment.segs);
  Array.iter
    (fun (s : Segment.seg) ->
      Alcotest.(check int) "degenerate width" 1 (s.Segment.hi - s.Segment.lo))
    plan4.Segment.segs;
  Alcotest.(check int) "four chains" 4 (Array.length plan4.Segment.chains);
  let r = Certify.run ~workers:2 ~segment_target:1 ~registry:(rw_registry ()) t4 in
  Alcotest.(check bool) "serial trace certifies" true r.Certify.ok;
  Alcotest.(check int) "all four counted" 4 r.Certify.txns;
  Alcotest.(check int) "four segments certified" 4 r.Certify.segments

(* ---------- certification ---------- *)

let run_path ?workers ?segment_target ~registry path =
  Certify.run ?workers ?segment_target ~registry (Trace.load path)

let test_certify_clean () =
  let path = tmp_trace () in
  let p = { Bench_trace.default_params with txns = 400; burst = 16; keys = 32 } in
  Bench_trace.generate ~path p;
  let r = run_path ~workers:2 ~segment_target:50 ~registry:(rw_registry ()) path in
  Alcotest.(check bool) "certified" true r.Certify.ok;
  Alcotest.(check int) "all txns" 400 r.Certify.txns;
  Alcotest.(check bool) "segmented" true (r.Certify.segments > 1);
  Alcotest.(check bool) "quiescent cuts found" true (r.Certify.quiescent_cuts > 0)

let test_certify_planted () =
  let path = tmp_trace () in
  let p =
    {
      Bench_trace.default_params with
      txns = 400;
      burst = 16;
      keys = 32;
      plant_cycle = true;
    }
  in
  Bench_trace.generate ~path p;
  let r = run_path ~workers:2 ~segment_target:50 ~registry:(rw_registry ()) path in
  Alcotest.(check bool) "rejected" false r.Certify.ok;
  match r.Certify.violation with
  | Some v -> Alcotest.(check bool) "witness tops" true (v.Certify.witness <> [])
  | None -> Alcotest.fail "no violation reported"

(* The planted cross-segment cycle: an eight-transaction write ring
   T1 -> T2 -> ... -> T8 -> T1.  T1's second write lands after
   everything else, so no quiescent point exists and a heuristic cut
   splits the ring into {T1..T4} and {T5..T8}.  Each segment alone is
   acyclic (a forward path), and each pairwise cross-segment probe
   alone sees a single edge — only the stitched global order can close
   the cycle. *)
let test_cross_segment_cycle () =
  let path = tmp_trace () in
  write_records path
    [
      (* Ti writes P(i-1) then P(i mod 8); T1's P0 write comes last,
         after T8's, closing the ring backwards *)
      flat ~top:1 [ (1, true); (0, true) ] [ 2; 100 ];
      flat ~top:2 [ (1, true); (2, true) ] [ 3; 4 ];
      flat ~top:3 [ (2, true); (3, true) ] [ 5; 6 ];
      flat ~top:4 [ (3, true); (4, true) ] [ 7; 8 ];
      flat ~top:5 [ (4, true); (5, true) ] [ 9; 10 ];
      flat ~top:6 [ (5, true); (6, true) ] [ 11; 12 ];
      flat ~top:7 [ (6, true); (7, true) ] [ 13; 14 ];
      flat ~top:8 [ (7, true); (0, true) ] [ 15; 16 ];
    ];
  let t = Trace.load path in
  (* target 1, overflow 4: a heuristic cut between T4 and T5 *)
  let r = Certify.run ~workers:2 ~segment_target:1 ~registry:(rw_registry ()) t in
  Alcotest.(check bool) "heuristic cut" true (r.Certify.heuristic_cuts > 0);
  Alcotest.(check bool) "cycle caught" false r.Certify.ok;
  (match r.Certify.violation with
  | Some v ->
      Alcotest.(check bool) "stitch-level detection" true
        (match v.Certify.where with `Probe _ | `Stitch -> true | `Segment _ -> false)
  | None -> Alcotest.fail "no violation");
  (* the oracle agrees the full history is bad *)
  let h = Trace.to_history t ~commut:(rw_registry ()) in
  Alcotest.(check bool) "oracle agrees" false
    (Serializability.oo_serializable h)

(* ---------- agreement with the oracle ---------- *)

let verdict_oracle h =
  (Serializability.check h).Serializability.oo_serializable

(* random flat traces: overlapping spans, tiny segments, so heuristic
   chains and pairwise probes do real work *)
let prop_flat_agreement =
  QCheck.Test.make ~name:"certify = oracle (random flat interleavings)"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 77 |] in
      let n = 6 + Random.State.int rng 6 in
      let keys = 4 in
      (* random spans: each txn gets 2 prims at random distinct stamps *)
      let stamps = Array.init (2 * n) (fun i -> i + 1) in
      (* shuffle stamp slots among transactions *)
      for i = Array.length stamps - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let tmp = stamps.(i) in
        stamps.(i) <- stamps.(j);
        stamps.(j) <- tmp
      done;
      let records =
        List.init n (fun k ->
            let s1 = stamps.(2 * k) and s2 = stamps.((2 * k) + 1) in
            let lo = min s1 s2 and hi = max s1 s2 in
            let ops =
              List.init 2 (fun _ ->
                  ( Random.State.int rng keys,
                    Random.State.bool rng ))
            in
            flat ~top:(k + 1) ops [ lo; hi ])
      in
      let path = tmp_trace () in
      write_records path records;
      let t = Trace.load path in
      let registry = rw_registry () in
      let r = Certify.run ~workers:2 ~segment_target:2 ~registry t in
      let oracle = verdict_oracle (Trace.to_history t ~commut:registry) in
      r.Certify.ok = oracle)

(* random nested (depth-2) systems under random interleavings: chains
   containing nested transactions must escalate and stay exact *)
let prop_nested_agreement =
  QCheck.Test.make ~name:"certify = oracle (random nested interleavings)"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let params =
        {
          Rs.default_params with
          Rs.n_txns = 4;
          calls_per_txn = 2;
          prims_per_call = 2;
          n_objects = 3;
          n_pages = 4;
          p_commute = 0.5;
        }
      in
      let h = Rs.history ~seed ~order_seed:(seed * 31 + 1) params in
      let path = tmp_trace () in
      Trace.write_history ~registry:"random" path h;
      let t = Trace.load path in
      let registry = History.commut h in
      let r = Certify.run ~workers:2 ~segment_target:1 ~registry t in
      r.Certify.ok = verdict_oracle h)

(* serial orders: every transaction boundary is quiescent, so this
   exercises pure per-segment conjunction (no probes, no escalation) *)
let prop_serial_agreement =
  QCheck.Test.make ~name:"certify = oracle (serial nested orders)" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let params =
        {
          Rs.default_params with
          Rs.n_txns = 5;
          calls_per_txn = 2;
          prims_per_call = 2;
          n_objects = 3;
          n_pages = 4;
          p_commute = 0.4;
        }
      in
      let trees, registry = Rs.system ~seed params in
      let order = List.concat_map History.serial_primitives trees in
      let h = History.v ~tops:trees ~order ~commut:registry in
      let path = tmp_trace () in
      Trace.write_history ~registry:"random" path h;
      let t = Trace.load path in
      let r = Certify.run ~workers:2 ~segment_target:1 ~registry t in
      r.Certify.ok = verdict_oracle h)

let suites =
  [
    ( "certify",
      [
        Alcotest.test_case "trace round-trip" `Quick test_roundtrip;
        Alcotest.test_case "trace torn tail" `Quick test_torn_tail;
        Alcotest.test_case "trace bad magic" `Quick test_not_a_trace;
        Alcotest.test_case "trace zero-byte file" `Quick test_trace_zero_byte;
        Alcotest.test_case "trace header only" `Quick test_trace_header_only;
        Alcotest.test_case "segmenter quiescent cuts" `Quick
          test_segment_quiescent;
        Alcotest.test_case "segmenter degenerate 1-txn segments" `Quick
          test_segment_degenerate_singletons;
        Alcotest.test_case "segmenter heuristic fallback" `Quick
          test_segment_heuristic;
        Alcotest.test_case "clean bench trace certifies" `Quick
          test_certify_clean;
        Alcotest.test_case "planted cycle rejected" `Quick test_certify_planted;
        Alcotest.test_case "cross-segment cycle via stitching" `Quick
          test_cross_segment_cycle;
        QCheck_alcotest.to_alcotest prop_flat_agreement;
        QCheck_alcotest.to_alcotest prop_nested_agreement;
        QCheck_alcotest.to_alcotest prop_serial_agreement;
      ] );
  ]
