(* The network server stack: wire-codec round-trips (property),
   truncated-frame rejection, the incremental framer, session deadline
   expiry through the engine (fake clock), and full client/server
   exchanges over a loopback unix socket — driven single-threaded by
   stepping the server from the client's wait callback. *)

open Ooser_core
open Ooser_oodb
open Ooser_server
module Protocol = Ooser_cc.Protocol
module Lock_table = Ooser_cc.Lock_table
module Banking = Ooser_workload.Banking
module Escrow = Ooser_adts.Escrow_counter
module Stats = Ooser_sim.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- codec round-trip properties ---------------------------------------------- *)

let gen_value =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             oneof
               [
                 pure Value.Unit;
                 map Value.bool bool;
                 map Value.int int;
                 map Value.str (string_size ~gen:printable (int_bound 12));
               ]
           in
           if n <= 0 then leaf
           else
             frequency
               [
                 (3, leaf);
                 (1, map2 Value.pair (self (n / 2)) (self (n / 2)));
                 (1, map Value.list (list_size (int_bound 4) (self (n / 3))));
               ]))

let gen_request =
  QCheck2.Gen.(
    let str = string_size ~gen:printable (int_bound 16) in
    oneof
      [
        map (fun c -> Wire.Hello c) str;
        map2
          (fun name timeout_ms -> Wire.Begin { name; timeout_ms })
          str (int_bound 100_000);
        map3
          (fun obj meth args -> Wire.Call { obj; meth; args })
          str str
          (list_size (int_bound 3) gen_value);
        pure Wire.Commit;
        map (fun r -> Wire.Abort r) str;
        pure Wire.Stats;
        pure Wire.Shutdown;
        pure Wire.Bye;
      ])

let gen_response =
  QCheck2.Gen.(
    let str = string_size ~gen:printable (int_bound 16) in
    oneof
      [
        map3
          (fun server db protocol -> Wire.Welcome { server; db; protocol })
          str str str;
        map (fun top -> Wire.Begun { top }) (int_bound 1_000_000);
        map (fun v -> Wire.Result v) gen_value;
        map (fun m -> Wire.Failed m) str;
        map (fun v -> Wire.Committed v) gen_value;
        map (fun r -> Wire.Aborted r) str;
        map (fun s -> Wire.Stats_json s) str;
        map2 (fun code msg -> Wire.Error { code; msg }) str str;
        pure Wire.Closing;
      ])

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"wire requests round-trip" ~count:500
    ~print:(Fmt.str "%a" Wire.pp_request) gen_request (fun q ->
      Wire.decode_request (Wire.encode_request q) = q)

let prop_response_roundtrip =
  QCheck2.Test.make ~name:"wire responses round-trip" ~count:500
    ~print:(Fmt.str "%a" Wire.pp_response) gen_response (fun p ->
      Wire.decode_response (Wire.encode_response p) = p)

let prop_value_roundtrip =
  (* nested/empty shapes travel through [Result] *)
  QCheck2.Test.make ~name:"values round-trip (incl. nested/empty)" ~count:500
    ~print:(Fmt.str "%a" Value.pp) gen_value (fun v ->
      Wire.decode_response (Wire.encode_response (Wire.Result v))
      = Wire.Result v)

let prop_truncation_rejected =
  (* no strict prefix of an encoded response decodes: the codec must
     fail rather than silently accept a short frame *)
  QCheck2.Test.make ~name:"truncated frames rejected" ~count:300
    ~print:(Fmt.str "%a" Wire.pp_response) gen_response (fun p ->
      let s = Wire.encode_response p in
      let n = String.length s in
      List.for_all
        (fun cut ->
          match Wire.decode_response (String.sub s 0 cut) with
          | _ -> false
          | exception Failure _ -> true)
        (List.sort_uniq Int.compare [ 0; n / 2; n - 1 ]))

let explicit_values =
  [
    Value.unit;
    Value.list [];
    Value.str "";
    Value.int min_int;
    Value.int max_int;
    Value.pair (Value.list [ Value.unit ]) (Value.list [ Value.list [] ]);
    Value.list [ Value.pair Value.unit (Value.str "\x00\xff\n") ];
  ]

let test_explicit_roundtrips () =
  List.iter
    (fun v ->
      check_bool
        (Fmt.str "%a" Value.pp v)
        true
        (Wire.decode_response (Wire.encode_response (Wire.Result v))
        = Wire.Result v))
    explicit_values

let test_framer () =
  let f = Wire.Framer.create () in
  let p1 = Wire.encode_request (Wire.Hello "a") in
  let p2 = Wire.encode_request Wire.Commit in
  let stream = Wire.frame p1 ^ Wire.frame p2 in
  (* trickle in byte by byte: frames appear exactly at their boundaries *)
  let popped = ref [] in
  String.iter
    (fun c ->
      Wire.Framer.feed f (String.make 1 c);
      match Wire.Framer.pop f with
      | Ok (Some payload) -> popped := payload :: !popped
      | Ok None -> ()
      | Error e -> Alcotest.failf "poisoned: %s" e)
    stream;
  (match List.rev !popped with
  | [ a; b ] ->
      check_bool "first frame" true (a = p1);
      check_bool "second frame" true (b = p2)
  | l -> Alcotest.failf "expected 2 frames, got %d" (List.length l));
  (* an oversized length prefix poisons the stream *)
  let f = Wire.Framer.create () in
  let w = Ooser_storage.Codec.Writer.create () in
  Ooser_storage.Codec.Writer.u32 w (Wire.max_frame + 1);
  Wire.Framer.feed f (Ooser_storage.Codec.Writer.contents w);
  (match Wire.Framer.pop f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted")

(* -- session deadline expiry (fake clock, no sockets) ------------------------- *)

let test_deadline_expiry () =
  let db = Database.create () in
  let acct =
    Banking.register_account db ~semantics:`Escrow 0 ~balance:100 ~low:0
      ~high:1000
  in
  let reg = Database.spec_registry db in
  let protocol = Protocol.open_nested ~reg () in
  let clock = ref 0.0 in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.deadlock = Engine.Wound_wait;
      now = (fun () -> !clock);
    }
  in
  let eng = Engine.create ~config db ~protocol [] in
  let tr = Session.new_txn ~top:1 ~began:0.0 in
  Engine.submit eng ~top:1 ~name:"s1" ~deadline:10.0 (Session.body tr);
  ignore (Engine.pump eng);
  Session.push_call tr ~now:0.0 (Banking.account_obj 0) "withdraw"
    [ Value.int 40 ];
  ignore (Engine.poke eng 1);
  ignore (Engine.pump eng);
  (* the call committed at its level: money moved, semantic lock held,
     transaction parked awaiting its next command *)
  check_bool "still running" true (Engine.txn_state eng 1 = `Running);
  check_int "balance debited" 60 (Escrow.value acct);
  let table =
    match Protocol.table protocol with
    | Some lt -> lt
    | None -> Alcotest.fail "open nested protocol has a lock table"
  in
  check_bool "locks held while awaiting" true
    (Lock_table.live_for_top table 1 <> []);
  (* the clock passes the deadline; the next pump must abort the
     transaction through the normal compensation path *)
  clock := 11.0;
  ignore (Engine.pump eng);
  (match Engine.txn_state eng 1 with
  | `Aborted _ -> ()
  | `Running -> Alcotest.fail "deadline ignored"
  | _ -> Alcotest.fail "unexpected state");
  check_int "compensation restored the balance" 100 (Escrow.value acct);
  check_int "lock table holds nothing for the dead transaction" 0
    (List.length (Lock_table.live_for_top table 1));
  check_int "deadline abort counted" 1
    (Stats.Counter.get (Engine.counters eng) "deadline-aborts")

(* -- loopback client/server exchanges ----------------------------------------- *)

let with_server config f =
  let srv = Server.create config in
  Fun.protect
    ~finally:(fun () -> Server.close srv)
    (fun () -> f srv)

let temp_sock () =
  let path = Filename.temp_file "oosdb_test" ".sock" in
  Sys.remove path;
  path

let connect srv config =
  Client.connect
    ~on_wait:(fun () -> Server.step srv ~timeout:0.005)
    ~recv_timeout:10.0
    (Server.sockaddr_of config.Server.addr)

let test_e2e_commit () =
  let config =
    {
      (Server.default_config (Server.Unix_sock (temp_sock ()))) with
      Server.preload = 20;
    }
  in
  with_server config (fun srv ->
      let c = connect srv config in
      (match Client.request c (Wire.Hello "test") with
      | Wire.Welcome { db; protocol; _ } ->
          Alcotest.(check string) "db" "encyclopedia" db;
          Alcotest.(check string) "protocol" "open" protocol
      | r -> Alcotest.failf "HELLO: %a" Wire.pp_response r);
      (match Client.request c (Wire.Begin { name = "t"; timeout_ms = 0 }) with
      | Wire.Begun _ -> ()
      | r -> Alcotest.failf "BEGIN: %a" Wire.pp_response r);
      (match
         Client.request c
           (Wire.Call
              { obj = "Enc"; meth = "search"; args = [ Value.str "k00003" ] })
       with
      | Wire.Result (Value.Pair (Value.Str "found", _)) -> ()
      | r -> Alcotest.failf "CALL search: %a" Wire.pp_response r);
      (match
         Client.request c
           (Wire.Call
              {
                obj = "Enc";
                meth = "insert";
                args = [ Value.str "zz001"; Value.str "fresh" ];
              })
       with
      | Wire.Result _ -> ()
      | r -> Alcotest.failf "CALL insert: %a" Wire.pp_response r);
      (match Client.request c Wire.Commit with
      | Wire.Committed _ -> ()
      | r -> Alcotest.failf "COMMIT: %a" Wire.pp_response r);
      check_bool "history certified" true (Server.certified srv);
      (match Client.request c Wire.Bye with
      | Wire.Closing -> ()
      | r -> Alcotest.failf "BYE: %a" Wire.pp_response r);
      Client.close c)

(* Durable server: commit through incarnation one, drop it WITHOUT
   draining (the kill -9 model — no checkpoint runs), then boot a second
   incarnation on the same directory: recovery must replay the committed
   transaction from the journal alone, and the value must be readable
   over the wire. *)
let test_e2e_durable_restart () =
  let dir = Filename.temp_file "oosdb_dur" "" in
  Sys.remove dir;
  let mk_config () =
    {
      (Server.default_config (Server.Unix_sock (temp_sock ()))) with
      Server.preload = 10;
      durable_dir = Some dir;
    }
  in
  let config1 = mk_config () in
  let srv1 = Server.create config1 in
  let c = connect srv1 config1 in
  (match Client.request c (Wire.Hello "dur") with
  | Wire.Welcome _ -> ()
  | r -> Alcotest.failf "HELLO: %a" Wire.pp_response r);
  (match Client.request c (Wire.Begin { name = "t"; timeout_ms = 0 }) with
  | Wire.Begun _ -> ()
  | r -> Alcotest.failf "BEGIN: %a" Wire.pp_response r);
  (match
     Client.request c
       (Wire.Call
          {
            obj = "Enc";
            meth = "insert";
            args = [ Value.str "zz-dur"; Value.str "persisted" ];
          })
   with
  | Wire.Result _ -> ()
  | r -> Alcotest.failf "CALL insert: %a" Wire.pp_response r);
  (match Client.request c Wire.Commit with
  | Wire.Committed _ -> ()
  | r -> Alcotest.failf "COMMIT: %a" Wire.pp_response r);
  Client.close c;
  (* srv1 is abandoned here: no drain, no checkpoint — only the forced
     journal survives, exactly as after kill -9 *)
  let config2 = mk_config () in
  with_server config2 (fun srv2 ->
      (match Server.last_recovery srv2 with
      | Some r ->
          check_int "one winner recovered" 1
            (List.length r.Engine.rec_winners);
          check_bool "recovered history re-certifies" true
            r.Engine.recertified
      | None -> Alcotest.fail "durable boot produced no recovery report");
      let c2 = connect srv2 config2 in
      (match Client.request c2 (Wire.Hello "dur2") with
      | Wire.Welcome _ -> ()
      | r -> Alcotest.failf "HELLO2: %a" Wire.pp_response r);
      (match Client.request c2 (Wire.Begin { name = "t2"; timeout_ms = 0 }) with
      | Wire.Begun _ -> ()
      | r -> Alcotest.failf "BEGIN2: %a" Wire.pp_response r);
      (match
         Client.request c2
           (Wire.Call
              { obj = "Enc"; meth = "search"; args = [ Value.str "zz-dur" ] })
       with
      | Wire.Result (Value.Pair (Value.Str "found", Value.Str "persisted")) ->
          ()
      | r -> Alcotest.failf "CALL search: %a" Wire.pp_response r);
      (match Client.request c2 Wire.Commit with
      | Wire.Committed _ -> ()
      | r -> Alcotest.failf "COMMIT2: %a" Wire.pp_response r);
      (match Client.request c2 Wire.Bye with
      | Wire.Closing -> ()
      | r -> Alcotest.failf "BYE2: %a" Wire.pp_response r);
      Client.close c2)

let test_e2e_admission_backpressure () =
  let config =
    {
      (Server.default_config (Server.Unix_sock (temp_sock ()))) with
      Server.preload = 10;
      max_inflight = 1;
    }
  in
  with_server config (fun srv ->
      let c1 = connect srv config in
      let c2 = connect srv config in
      ignore (Client.request c1 (Wire.Hello "one"));
      ignore (Client.request c2 (Wire.Hello "two"));
      (match Client.request c1 (Wire.Begin { name = "a"; timeout_ms = 0 }) with
      | Wire.Begun _ -> ()
      | r -> Alcotest.failf "BEGIN a: %a" Wire.pp_response r);
      (* the second BEGIN must queue: its Begun reply is withheld *)
      Client.send c2 (Wire.Begin { name = "b"; timeout_ms = 0 });
      for _ = 1 to 20 do
        Server.step srv ~timeout:0.002
      done;
      check_int "one transaction admitted" 1 (Server.inflight srv);
      (* finishing the first admits the queued one *)
      (match Client.request c1 Wire.Commit with
      | Wire.Committed _ -> ()
      | r -> Alcotest.failf "COMMIT a: %a" Wire.pp_response r);
      (match Client.recv c2 with
      | Wire.Begun _ -> ()
      | r -> Alcotest.failf "queued BEGIN b: %a" Wire.pp_response r);
      (match Client.request c2 Wire.Commit with
      | Wire.Committed _ -> ()
      | r -> Alcotest.failf "COMMIT b: %a" Wire.pp_response r);
      Client.close c1;
      Client.close c2)

let test_e2e_deadline_over_wire () =
  let config =
    {
      (Server.default_config (Server.Unix_sock (temp_sock ()))) with
      Server.preload = 10;
    }
  in
  with_server config (fun srv ->
      let c = connect srv config in
      ignore (Client.request c (Wire.Hello "late"));
      (match Client.request c (Wire.Begin { name = "t"; timeout_ms = 40 }) with
      | Wire.Begun _ -> ()
      | r -> Alcotest.failf "BEGIN: %a" Wire.pp_response r);
      (* outlive the deadline while the server keeps stepping; the
         parked abort must answer the next command *)
      let until = Unix.gettimeofday () +. 0.12 in
      while Unix.gettimeofday () < until do
        Server.step srv ~timeout:0.01
      done;
      (match
         Client.request c
           (Wire.Call
              { obj = "Enc"; meth = "search"; args = [ Value.str "k00001" ] })
       with
      | Wire.Aborted _ -> ()
      | r -> Alcotest.failf "expected parked abort, got %a" Wire.pp_response r);
      check_int "deadline abort counted" 1
        (Stats.Counter.get (Engine.counters (Server.engine srv))
           "deadline-aborts");
      check_int "no transactions left in flight" 0 (Server.inflight srv);
      (* the session is usable again *)
      (match Client.request c (Wire.Begin { name = "t2"; timeout_ms = 0 }) with
      | Wire.Begun _ -> ()
      | r -> Alcotest.failf "re-BEGIN: %a" Wire.pp_response r);
      (match Client.request c Wire.Commit with
      | Wire.Committed _ -> ()
      | r -> Alcotest.failf "COMMIT: %a" Wire.pp_response r);
      Client.close c)

let test_e2e_graceful_shutdown () =
  let config =
    {
      (Server.default_config (Server.Unix_sock (temp_sock ()))) with
      Server.preload = 10;
    }
  in
  let srv = Server.create config in
  let c1 = connect srv config in
  let c2 = connect srv config in
  ignore (Client.request c1 (Wire.Hello "worker"));
  ignore (Client.request c2 (Wire.Hello "admin"));
  (match Client.request c1 (Wire.Begin { name = "w"; timeout_ms = 0 }) with
  | Wire.Begun _ -> ()
  | r -> Alcotest.failf "BEGIN: %a" Wire.pp_response r);
  ignore
    (Client.request c1
       (Wire.Call
          { obj = "Enc"; meth = "search"; args = [ Value.str "k00002" ] }));
  (* SHUTDOWN drains: the in-flight transaction may still finish *)
  (match Client.request c2 Wire.Shutdown with
  | Wire.Closing -> ()
  | r -> Alcotest.failf "SHUTDOWN: %a" Wire.pp_response r);
  check_bool "still draining" true (Server.running srv);
  (match Client.request c1 Wire.Commit with
  | Wire.Committed _ -> ()
  | r -> Alcotest.failf "COMMIT during drain: %a" Wire.pp_response r);
  (* with the last transaction decided the server stops *)
  for _ = 1 to 20 do
    if Server.running srv then Server.step srv ~timeout:0.002
  done;
  check_bool "server stopped" false (Server.running srv);
  Client.close c1;
  Client.close c2

let suites =
  [
    ( "server",
      [
        QCheck_alcotest.to_alcotest prop_request_roundtrip;
        QCheck_alcotest.to_alcotest prop_response_roundtrip;
        QCheck_alcotest.to_alcotest prop_value_roundtrip;
        QCheck_alcotest.to_alcotest prop_truncation_rejected;
        Alcotest.test_case "explicit value shapes round-trip" `Quick
          test_explicit_roundtrips;
        Alcotest.test_case "framer reassembles a trickled stream" `Quick
          test_framer;
        Alcotest.test_case "session deadline aborts and compensates" `Quick
          test_deadline_expiry;
        Alcotest.test_case "loopback commit end to end" `Quick test_e2e_commit;
        Alcotest.test_case "durable restart recovers committed state" `Quick
          test_e2e_durable_restart;
        Alcotest.test_case "admission control delays BEGIN" `Quick
          test_e2e_admission_backpressure;
        Alcotest.test_case "deadline abort over the wire" `Quick
          test_e2e_deadline_over_wire;
        Alcotest.test_case "graceful shutdown drains in-flight" `Quick
          test_e2e_graceful_shutdown;
      ] );
  ]
