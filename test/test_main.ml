(* Test runner: aggregates the per-area suites. *)

let () =
  Alcotest.run "ooser"
    (List.concat
       [
         Test_ids.suites;
         Test_digraph.suites;
         Test_calltree.suites;
         Test_commutativity.suites;
         Test_history.suites;
         Test_schedule.suites;
         Test_storage.suites;
         Test_btree.suites;
         Test_engine.suites;
         Test_encyclopedia.suites;
         Test_adts.suites;
         Test_cc.suites;
         Test_workload.suites;
         Test_paper.suites;
         Test_props.suites;
         Test_text.suites;
         Test_parallel.suites;
         Test_recovery.suites;
         Test_certifier.suites;
         Test_adt_objects.suites;
         Test_faults.suites;
         Test_extension.suites;
         Test_partial_rollback.suites;
         Test_enc_api.suites;
         Test_report.suites;
         Test_misc.suites;
         Test_woundwait.suites;
         Test_compound.suites;
         Test_inventory.suites;
         Test_enumerate.suites;
         Test_matrix.suites;
         Test_lint.suites;
         Test_atlas.suites;
         Test_incremental.suites;
         Test_server.suites;
         Test_shard.suites;
         Test_crash.suites;
         Test_infer.suites;
         Test_certify.suites;
         Test_mc.suites;
         Test_occ.suites;
       ])
