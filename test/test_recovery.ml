(* Tests for the write-ahead log and crash recovery. *)

open Ooser_storage

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_slot = Alcotest.(check (option string))

let test_wal_basics () =
  let w = Wal.create () in
  let l0 = Wal.append w (Wal.Begin 1) in
  let l1 = Wal.append w (Wal.Commit 1) in
  check_int "lsn sequence" (l0 + 1) l1;
  check_int "nothing stable yet" 0 (List.length (Wal.stable w));
  Wal.force w;
  check_int "stable after force" 2 (List.length (Wal.stable w));
  let l2 = Wal.append w (Wal.Begin 2) in
  ignore l2;
  let crashed = Wal.crash w in
  check_int "unforced record lost" 2 (List.length (Wal.all crashed))

let test_wal_codec_roundtrip () =
  let records =
    [
      Wal.Begin 7;
      Wal.Update { txn = 7; page = 3; slot = 2; before = None; after = Some "x" };
      Wal.Update
        { txn = 7; page = 3; slot = 2; before = Some "x"; after = Some "yy" };
      Wal.Update { txn = 7; page = 3; slot = 2; before = Some "yy"; after = None };
      Wal.Commit 7;
      Wal.Abort 9;
      Wal.Clr { txn = 7; page = 3; slot = 2; restore = Some "x"; undo_next = 1 };
      Wal.Clr { txn = 7; page = 3; slot = 2; restore = None; undo_next = 0 };
    ]
  in
  List.iter
    (fun r ->
      check_bool "roundtrip" true
        (Wal.decode_record (Wal.encode_record r) = r))
    records

let test_committed_survives_crash () =
  let s = Logged_store.create () in
  let p = Logged_store.alloc_page s in
  Logged_store.begin_txn s 1;
  Logged_store.write s ~txn:1 ~page:p ~slot:0 (Some "hello");
  Logged_store.commit s 1;
  (* pages never flushed: the data lives only in log + cache *)
  let s' = Logged_store.crash s in
  check_slot "lost before recovery" None (Logged_store.read_durable s' p 0);
  let report = Logged_store.recover s' in
  Alcotest.(check (list int)) "winner" [ 1 ] report.Logged_store.winners;
  check_slot "recovered" (Some "hello") (Logged_store.read_durable s' p 0)

let test_uncommitted_rolled_back () =
  let s = Logged_store.create () in
  let p = Logged_store.alloc_page s in
  Logged_store.begin_txn s 1;
  Logged_store.write s ~txn:1 ~page:p ~slot:0 (Some "durable");
  Logged_store.commit s 1;
  Logged_store.begin_txn s 2;
  Logged_store.write s ~txn:2 ~page:p ~slot:0 (Some "dirty");
  Logged_store.write s ~txn:2 ~page:p ~slot:1 (Some "extra");
  (* STEAL: flush the page carrying uncommitted data, then force the log
     far enough to contain T2's updates but not a commit *)
  Wal.force (Logged_store.wal s);
  Logged_store.flush_page s p;
  let s' = Logged_store.crash s in
  check_slot "dirty data hit the disk" (Some "dirty")
    (Logged_store.read_durable s' p 0);
  let report = Logged_store.recover s' in
  Alcotest.(check (list int)) "loser" [ 2 ] report.Logged_store.losers;
  check_slot "undone to committed value" (Some "durable")
    (Logged_store.read_durable s' p 0);
  check_slot "inserted slot removed" None (Logged_store.read_durable s' p 1)

let test_abort_before_crash () =
  let s = Logged_store.create () in
  let p = Logged_store.alloc_page s in
  Logged_store.begin_txn s 1;
  Logged_store.write s ~txn:1 ~page:p ~slot:0 (Some "oops");
  Logged_store.abort s 1;
  check_slot "rolled back live" None (Logged_store.read s p 0);
  Wal.force (Logged_store.wal s);
  let s' = Logged_store.crash s in
  let report = Logged_store.recover s' in
  check_int "no losers (already aborted)" 0
    (List.length report.Logged_store.losers);
  check_slot "still absent" None (Logged_store.read_durable s' p 0)

let test_recovery_idempotent () =
  let s = Logged_store.create () in
  let p = Logged_store.alloc_page s in
  Logged_store.begin_txn s 1;
  Logged_store.write s ~txn:1 ~page:p ~slot:0 (Some "v1");
  Logged_store.commit s 1;
  Logged_store.begin_txn s 2;
  Logged_store.write s ~txn:2 ~page:p ~slot:0 (Some "v2");
  Wal.force (Logged_store.wal s);
  let s' = Logged_store.crash s in
  ignore (Logged_store.recover s');
  let first = Logged_store.read_durable s' p 0 in
  ignore (Logged_store.recover s');
  check_slot "second recovery is a no-op" first (Logged_store.read_durable s' p 0);
  check_slot "committed value" (Some "v1") first

let test_multi_txn_interleaved () =
  let s = Logged_store.create () in
  let p = Logged_store.alloc_page s in
  let q = Logged_store.alloc_page s in
  Logged_store.begin_txn s 1;
  Logged_store.begin_txn s 2;
  Logged_store.write s ~txn:1 ~page:p ~slot:0 (Some "a1");
  Logged_store.write s ~txn:2 ~page:q ~slot:0 (Some "b1");
  Logged_store.write s ~txn:1 ~page:q ~slot:1 (Some "a2");
  Logged_store.commit s 1;
  Logged_store.write s ~txn:2 ~page:p ~slot:1 (Some "b2");
  (* T2 never commits; crash with partial flushes *)
  Logged_store.flush_page s q;
  let s' = Logged_store.crash s in
  let report = Logged_store.recover s' in
  Alcotest.(check (list int)) "winners" [ 1 ] report.Logged_store.winners;
  Alcotest.(check (list int)) "losers" [ 2 ] report.Logged_store.losers;
  check_slot "T1 on p" (Some "a1") (Logged_store.read_durable s' p 0);
  check_slot "T1 on q" (Some "a2") (Logged_store.read_durable s' q 1);
  check_slot "T2 on q gone" None (Logged_store.read_durable s' q 0);
  check_slot "T2 on p gone" None (Logged_store.read_durable s' p 1)

(* Property: for a random batch of single-slot transactions with a random
   crash point, recovery leaves exactly the committed values. *)
let prop_recovery_atomic =
  let open QCheck2 in
  let gen =
    Gen.(
      pair (int_range 1 8) (* transactions *) (int_range 0 100 (* crash seed *)))
  in
  QCheck2.Test.make ~name:"recovery keeps exactly the committed effects"
    ~count:100 gen (fun (n, seed) ->
      let s = Logged_store.create () in
      let p = Logged_store.alloc_page s in
      let rng = Ooser_sim.Rng.create ~seed:(seed + 1) in
      let committed = ref [] in
      for txn = 1 to n do
        Logged_store.begin_txn s txn;
        Logged_store.write s ~txn ~page:p ~slot:txn
          (Some (Printf.sprintf "t%d" txn));
        if Ooser_sim.Rng.bool rng then begin
          Logged_store.commit s txn;
          committed := txn :: !committed
        end
        else if Ooser_sim.Rng.bool rng then Logged_store.abort s txn
        (* else: left in flight *)
      done;
      if Ooser_sim.Rng.bool rng then Logged_store.flush_all s;
      let s' = Logged_store.crash s in
      ignore (Logged_store.recover s');
      List.for_all
        (fun txn ->
          let expected =
            if List.mem txn !committed then Some (Printf.sprintf "t%d" txn)
            else None
          in
          Logged_store.read_durable s' p txn = expected)
        (List.init n (fun i -> i + 1)))

let test_checkpoint_bounds_redo () =
  let s = Logged_store.create () in
  let p = Logged_store.alloc_page s in
  (* a committed prefix, then a quiescent checkpoint *)
  Logged_store.begin_txn s 1;
  Logged_store.write s ~txn:1 ~page:p ~slot:0 (Some "old");
  Logged_store.commit s 1;
  ignore (Logged_store.checkpoint s);
  check_bool "log truncated" true (List.length (Wal.all (Logged_store.wal s)) <= 1);
  (* post-checkpoint work *)
  Logged_store.begin_txn s 2;
  Logged_store.write s ~txn:2 ~page:p ~slot:1 (Some "new");
  Logged_store.commit s 2;
  let s' = Logged_store.crash s in
  let report = Logged_store.recover s' in
  check_bool "few redo records" true (report.Logged_store.redone <= 1);
  check_slot "pre-checkpoint data durable" (Some "old")
    (Logged_store.read_durable s' p 0);
  check_slot "post-checkpoint commit recovered" (Some "new")
    (Logged_store.read_durable s' p 1)

let test_checkpoint_active_loser_undone () =
  (* a transaction straddles the checkpoint: its pre-checkpoint update is
     on disk (flushed at checkpoint) and must STILL be undone because it
     never committed *)
  let s = Logged_store.create () in
  let p = Logged_store.alloc_page s in
  Logged_store.begin_txn s 1;
  Logged_store.write s ~txn:1 ~page:p ~slot:0 (Some "uncommitted");
  ignore (Logged_store.checkpoint s);
  check_bool "log NOT truncated (active txn)" true
    (List.length (Wal.all (Logged_store.wal s)) > 1);
  Logged_store.write s ~txn:1 ~page:p ~slot:1 (Some "more");
  Wal.force (Logged_store.wal s);
  let s' = Logged_store.crash s in
  check_slot "flushed dirty data visible pre-recovery" (Some "uncommitted")
    (Logged_store.read_durable s' p 0);
  let report = Logged_store.recover s' in
  Alcotest.(check (list int)) "loser found via checkpoint" [ 1 ]
    report.Logged_store.losers;
  check_slot "pre-checkpoint update undone" None
    (Logged_store.read_durable s' p 0);
  check_slot "post-checkpoint update undone" None
    (Logged_store.read_durable s' p 1)

(* A crash in the middle of recovery's own undo pass.  Every undo writes
   a forced CLR before its page write, so the second recovery starts its
   undo below the floor left by the first: across both runs each of the
   loser's updates is compensated exactly once, and the durable state
   still ends with exactly the committed effects. *)
let test_clr_double_crash () =
  let exception Power_cut in
  let s = Logged_store.create () in
  let p = Logged_store.alloc_page s in
  Logged_store.begin_txn s 1;
  Logged_store.write s ~txn:1 ~page:p ~slot:0 (Some "committed");
  Logged_store.commit s 1;
  Logged_store.begin_txn s 2;
  for slot = 1 to 4 do
    Logged_store.write s ~txn:2 ~page:p ~slot (Some (Printf.sprintf "dirty%d" slot))
  done;
  (* steal the dirty page, keep T2's updates stable but uncommitted *)
  Wal.force (Logged_store.wal s);
  Logged_store.flush_all s;
  let s1 = Logged_store.crash s in
  let undone1 = ref [] in
  (match
     Logged_store.recover s1 ~on_undo:(fun lsn ->
         undone1 := lsn :: !undone1;
         if List.length !undone1 = 2 then raise Power_cut)
   with
  | _ -> Alcotest.fail "expected a crash mid-undo"
  | exception Power_cut -> ());
  check_int "first recovery died after 2 compensations" 2
    (List.length !undone1);
  (* crash again: only forced records survive — which includes the CLRs *)
  let s2 = Logged_store.crash s1 in
  let undone2 = ref [] in
  let report =
    Logged_store.recover s2 ~on_undo:(fun lsn -> undone2 := lsn :: !undone2)
  in
  Alcotest.(check (list int)) "loser still found" [ 2 ]
    report.Logged_store.losers;
  let both = !undone1 @ !undone2 in
  check_int "every update compensated across the two runs" 4
    (List.length both);
  check_bool "no update compensated twice" true
    (List.length (List.sort_uniq Int.compare both) = 4);
  check_slot "committed value intact" (Some "committed")
    (Logged_store.read_durable s2 p 0);
  for slot = 1 to 4 do
    check_slot
      (Printf.sprintf "dirty slot %d gone" slot)
      None
      (Logged_store.read_durable s2 p slot)
  done;
  (* a third recovery is a clean no-op *)
  let r3 = Logged_store.recover s2 in
  check_int "third recovery undoes nothing" 0 r3.Logged_store.undone

(* Live abort leaves CLRs; a crash right after must not re-undo. *)
let test_abort_clrs_bound_undo () =
  let s = Logged_store.create () in
  let p = Logged_store.alloc_page s in
  Logged_store.begin_txn s 1;
  Logged_store.write s ~txn:1 ~page:p ~slot:0 (Some "temp");
  Logged_store.abort s 1;
  Wal.force (Logged_store.wal s);
  let s' = Logged_store.crash s in
  let undone = ref 0 in
  let report = Logged_store.recover s' ~on_undo:(fun _ -> incr undone) in
  check_int "aborted txn is not a loser" 0
    (List.length report.Logged_store.losers);
  check_int "nothing re-undone" 0 !undone;
  check_slot "abort's effect durable" None (Logged_store.read_durable s' p 0)

let suites =
  [
    ( "recovery",
      [
        Alcotest.test_case "wal basics" `Quick test_wal_basics;
        Alcotest.test_case "wal codec roundtrip" `Quick test_wal_codec_roundtrip;
        Alcotest.test_case "committed survives crash (no-force)" `Quick
          test_committed_survives_crash;
        Alcotest.test_case "uncommitted rolled back (steal)" `Quick
          test_uncommitted_rolled_back;
        Alcotest.test_case "abort before crash" `Quick test_abort_before_crash;
        Alcotest.test_case "recovery idempotent" `Quick test_recovery_idempotent;
        Alcotest.test_case "interleaved transactions" `Quick
          test_multi_txn_interleaved;
        Alcotest.test_case "checkpoint bounds redo + truncates" `Quick
          test_checkpoint_bounds_redo;
        Alcotest.test_case "checkpoint-straddling loser undone" `Quick
          test_checkpoint_active_loser_undone;
        Alcotest.test_case "CLRs make double crash recoverable" `Quick
          test_clr_double_crash;
        Alcotest.test_case "abort CLRs bound recovery undo" `Quick
          test_abort_clrs_bound_undo;
        QCheck_alcotest.to_alcotest prop_recovery_atomic;
      ] );
  ]
