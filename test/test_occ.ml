(* Unit and property tests for the multiversion optimistic protocol
   (lib/occ): snapshot visibility, buffered-write apply order,
   validation-abort retry, escrow deposit/deposit non-abort under
   commute-mode validation (and the abort under rw mode), the
   doctors-on-duty write-skew pair, and the qcheck acceptance property
   that every occ-committed history is oo-serializable. *)

open Ooser_core
open Ooser_oodb
module Store = Ooser_occ.Store
module Model = Ooser_occ.Model
module Workloads = Ooser_occ.Workloads
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng
module Stats = Ooser_sim.Stats

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let o = Obj_id.v

let counter store name =
  match List.assoc_opt name (Stats.Counter.to_list (Store.counters store)) with
  | Some n -> n
  | None -> 0

let engine_counter eng name =
  match List.assoc_opt name (Stats.Counter.to_list (Engine.counters eng)) with
  | Some n -> n
  | None -> 0

(* Drive an interactive transaction to completion: poke its await park,
   pump, repeat — validation-abort retries replay the body and park
   again, so one poke is not always enough. *)
let finish eng top =
  let budget = ref 10 in
  while Engine.txn_state eng top = `Running && !budget > 0 do
    decr budget;
    ignore (Engine.poke eng top);
    ignore (Engine.pump eng)
  done

let committed eng top =
  match Engine.txn_state eng top with `Committed _ -> true | _ -> false

(* -- snapshot visibility ------------------------------------------------------- *)

let test_snapshot_visibility () =
  let db, store = Workloads.setup_banking ~mode:Store.Commute ~accounts:2 () in
  let eng = Engine.create db ~protocol:(Store.protocol store) [] in
  let seen = ref [] in
  let body1 ctx =
    seen := Value.to_int_exn (Runtime.call ctx (o "Account0") "balance" []) :: !seen;
    Runtime.await ctx;
    seen := Value.to_int_exn (Runtime.call ctx (o "Account0") "balance" []) :: !seen;
    Value.unit
  in
  Engine.submit eng ~top:1 ~name:"reader" body1;
  ignore (Engine.pump eng);
  (* a concurrent deposit commits while the reader is parked *)
  Engine.submit eng ~top:2 ~name:"depositor" (fun ctx ->
      Runtime.call ctx (o "Account0") "deposit" [ Value.int 50 ]);
  ignore (Engine.pump eng);
  check_bool "depositor committed" true (committed eng 2);
  check_int "newest committed state" 150
    (Value.to_int_exn (Store.committed_state store (o "Account0")));
  finish eng 1;
  (* the reader's balance probes conflict with the deposit per the
     escrow spec, so it validation-aborts once; each attempt's two reads
     are snapshot-stable, and the retry re-snapshots at 150 *)
  check_bool "reader committed" true (committed eng 1);
  (match List.rev !seen with
  | [ a; b; c; d ] ->
      check_int "first attempt read pre-deposit state" 100 a;
      check_int "first attempt snapshot-stable across the commit" a b;
      check_int "retry reads fresh snapshot" 150 c;
      check_int "retry snapshot-stable" c d
  | _ -> Alcotest.fail "expected two attempts of two reads each");
  check_bool "multiversion history serializable" true
    (Serializability.oo_serializable (Store.history store))

(* Own writes are visible through the snapshot overlay before commit. *)
let test_read_own_writes () =
  let db, store = Workloads.setup_banking ~mode:Store.Commute ~accounts:1 () in
  let eng = Engine.create db ~protocol:(Store.protocol store) [] in
  let mid = ref 0 in
  Engine.submit eng ~top:1 ~name:"rmw" (fun ctx ->
      ignore (Runtime.call ctx (o "Account0") "deposit" [ Value.int 7 ]);
      mid := Value.to_int_exn (Runtime.call ctx (o "Account0") "balance" []);
      Value.unit);
  ignore (Engine.pump eng);
  check_bool "committed" true (committed eng 1);
  check_int "own write visible" 107 !mid;
  check_int "committed state" 107
    (Value.to_int_exn (Store.committed_state store (o "Account0")))

(* -- buffered-write apply order ------------------------------------------------ *)

let test_apply_order () =
  let db, store =
    Workloads.setup_registers ~mode:Store.Commute ~cells:[ "X" ] ()
  in
  let eng = Engine.create db ~protocol:(Store.protocol store) [] in
  Engine.submit eng ~top:1 ~name:"writer" (fun ctx ->
      ignore (Runtime.call ctx (o "X") "write" [ Value.int 1 ]);
      ignore (Runtime.call ctx (o "X") "write" [ Value.int 2 ]);
      ignore (Runtime.call ctx (o "X") "write" [ Value.int 3 ]);
      Value.unit);
  ignore (Engine.pump eng);
  check_bool "committed" true (committed eng 1);
  check_int "last buffered write wins" 3
    (Value.to_int_exn (Store.committed_state store (o "X")));
  (* one version installed per commit, not per intention *)
  check_int "single new version" 2 (List.length (Store.versions store (o "X")))

(* A nested subtransaction aborting alone takes its buffered intentions
   with it (partial rollback through the engine's undo machinery). *)
let test_partial_rollback_drops_intentions () =
  let db, store =
    Workloads.setup_registers ~mode:Store.Commute ~cells:[ "X" ] ()
  in
  Database.register db (o "H") ~spec:Commutativity.all_commute
    [
      ( "doomed",
        Database.composite (fun ctx _ ->
            ignore (Runtime.call ctx (o "X") "write" [ Value.int 99 ]);
            Runtime.abort "doomed subtransaction") );
    ];
  let eng = Engine.create db ~protocol:(Store.protocol store) [] in
  Engine.submit eng ~top:1 ~name:"partial" (fun ctx ->
      (match Runtime.try_call ctx (o "H") "doomed" [] with
      | Ok _ -> Alcotest.fail "doomed subtransaction succeeded"
      | Error _ -> ());
      ignore (Runtime.call ctx (o "X") "write" [ Value.int 5 ]);
      Value.unit);
  ignore (Engine.pump eng);
  check_bool "committed" true (committed eng 1);
  check_int "aborted subtransaction's write dropped" 5
    (Value.to_int_exn (Store.committed_state store (o "X")))

(* -- validation-abort retry ---------------------------------------------------- *)

let test_validation_abort_retry () =
  let db, store =
    Workloads.setup_registers ~mode:Store.Commute ~cells:[ "X"; "Y" ] ()
  in
  let eng = Engine.create db ~protocol:(Store.protocol store) [] in
  let observed = ref [] in
  Engine.submit eng ~top:1 ~name:"rmw" (fun ctx ->
      let v = Value.to_int_exn (Runtime.call ctx (o "X") "read" []) in
      observed := v :: !observed;
      Runtime.await ctx;
      Runtime.call ctx (o "Y") "write" [ Value.int (v + 1) ]);
  ignore (Engine.pump eng);
  Engine.submit eng ~top:2 ~name:"clobber" (fun ctx ->
      Runtime.call ctx (o "X") "write" [ Value.int 40 ]);
  ignore (Engine.pump eng);
  check_bool "clobber committed" true (committed eng 2);
  finish eng 1;
  check_bool "rmw committed after retry" true (committed eng 1);
  check_int "one validation abort" 1 (counter store "aborts");
  check_int "engine saw the validation failure" 1
    (engine_counter eng "validation-failures");
  (* the retry re-snapshotted: it read the clobbered value and wrote 41 *)
  check_int "retry wrote from fresh snapshot" 41
    (Value.to_int_exn (Store.committed_state store (o "Y")));
  check_bool "first attempt read the old value" true
    (match List.rev !observed with 0 :: _ -> true | _ -> false);
  check_bool "multiversion history serializable" true
    (Serializability.oo_serializable (Store.history store))

(* -- escrow: the headline admission -------------------------------------------- *)

(* Two concurrent deposits to the same account: commute-mode validation
   admits both (the escrow spec proves order-independence), rw-mode
   aborts the second committer — the exact capability gap between
   commutativity-aware OCC and plain SSI. *)
let run_concurrent_deposits mode =
  let db, store = Workloads.setup_banking ~mode ~accounts:1 () in
  let eng = Engine.create db ~protocol:(Store.protocol store) [] in
  let deposit top n =
    Engine.submit eng ~top ~name:(Printf.sprintf "dep%d" top) (fun ctx ->
        ignore (Runtime.call ctx (o "Account0") "deposit" [ Value.int n ]);
        Runtime.await ctx;
        Value.unit)
  in
  deposit 1 5;
  ignore (Engine.pump eng);
  deposit 2 7;
  ignore (Engine.pump eng);
  (* both have executed against the same snapshot; commit 1 then 2 *)
  finish eng 1;
  finish eng 2;
  check_bool "dep1 committed" true (committed eng 1);
  check_bool "dep2 committed" true (committed eng 2);
  check_int "both deposits landed" 112
    (Value.to_int_exn (Store.committed_state store (o "Account0")));
  (eng, store)

let test_escrow_deposits_commute () =
  let _eng, store = run_concurrent_deposits Store.Commute in
  check_int "no validation aborts" 0 (counter store "aborts");
  check_bool "commute-saves recorded" true (counter store "commute-saves" > 0)

let test_escrow_deposits_rw_abort () =
  let _eng, store = run_concurrent_deposits Store.Rw in
  check_int "rw validation aborts the second committer" 1
    (counter store "aborts")

(* -- write-skew (doctors-on-duty) ---------------------------------------------- *)

let run_write_skew mode =
  let db, store = Workloads.setup_roster ~mode () in
  let eng = Engine.create db ~protocol:(Store.protocol store) [] in
  let sign top meth =
    Engine.submit eng ~top ~name:meth (fun ctx ->
        ignore (Runtime.call ctx Workloads.roster_obj meth []);
        Runtime.await ctx;
        Value.unit)
  in
  sign 1 "sign_off_x";
  ignore (Engine.pump eng);
  sign 2 "sign_off_y";
  ignore (Engine.pump eng);
  finish eng 1;
  finish eng 2;
  check_bool "t1 committed" true (committed eng 1);
  check_bool "t2 committed" true (committed eng 2);
  (store, Store.committed_state store Workloads.roster_obj)

let test_write_skew_commute_aborts_one () =
  let store, state = run_write_skew Store.Commute in
  check_int "one transaction validation-aborts" 1 (counter store "aborts");
  (* the retried sign-off observed the other doctor already off duty *)
  check_string "serial outcome" "(off(saw on), off(saw off(saw on)))"
    (Value.to_string state)

let test_write_skew_rw_aborts_one () =
  let store, state = run_write_skew Store.Rw in
  check_int "one transaction validation-aborts" 1 (counter store "aborts");
  check_string "serial outcome" "(off(saw on), off(saw off(saw on)))"
    (Value.to_string state)

let test_write_skew_unvalidated_skews () =
  let store, state = run_write_skew Store.Unvalidated in
  check_int "no validation aborts" 0 (counter store "aborts");
  (* both doctors signed off having seen the other on duty: the state no
     serial order can produce — the anomaly the mc serial-state oracle
     flags in the write-skew scenarios *)
  check_string "write-skew state" "(off(saw on), off(saw on))"
    (Value.to_string state)

(* -- qcheck acceptance property ------------------------------------------------ *)

(* Every occ-committed history passes Serializability.check: random
   banking mixes (state-reading escrow specs — probe-validated) and
   random register mixes (stable specs — certifier-validated), random
   schedules, both validation modes. *)
let occ_serializable_once seed =
  let rng = Rng.create ~seed in
  let mode = if seed mod 2 = 0 then Store.Commute else Store.Rw in
  let banking = seed mod 4 < 2 in
  let db, store =
    if banking then
      Workloads.setup_banking ~mode ~accounts:3 ~balance:20 ~low:0 ~high:60 ()
    else Workloads.setup_registers ~mode ~cells:[ "X"; "Y"; "Z" ] ()
  in
  let n_txns = 3 + Rng.int rng 4 in
  let body _i ctx =
    let calls = 1 + Rng.int rng 3 in
    for _ = 1 to calls do
      if banking then begin
        let acct = o (Printf.sprintf "Account%d" (Rng.int rng 3)) in
        let amt = Value.int (1 + Rng.int rng 5) in
        match Rng.int rng 3 with
        | 0 -> ignore (Runtime.try_call ctx acct "deposit" [ amt ])
        | 1 -> ignore (Runtime.try_call ctx acct "withdraw" [ amt ])
        | _ -> ignore (Runtime.call ctx acct "balance" [])
      end
      else begin
        let cell = o (List.nth [ "X"; "Y"; "Z" ] (Rng.int rng 3)) in
        if Rng.int rng 2 = 0 then
          ignore (Runtime.call ctx cell "write" [ Value.int (Rng.int rng 100) ])
        else ignore (Runtime.call ctx cell "read" [])
      end
    done;
    Value.unit
  in
  let txns =
    List.init n_txns (fun i -> (i + 1, Printf.sprintf "t%d" (i + 1), body i))
  in
  let protocol = Store.protocol store in
  let config =
    { (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:(seed * 31 + 7))
    }
  in
  let out = Engine.run ~config db ~protocol txns in
  let h = Store.history store in
  History.validate h = Ok ()
  && Serializability.oo_serializable h
  && List.length (History.tops h) = List.length out.Engine.committed

let occ_history_prop =
  QCheck.Test.make ~count:100 ~name:"occ-committed history oo-serializable"
    QCheck.(int_bound 1_000_000)
    (fun seed -> occ_serializable_once seed)

let suites =
  [
    ( "occ",
      [
        Alcotest.test_case "snapshot visibility" `Quick test_snapshot_visibility;
        Alcotest.test_case "read own writes" `Quick test_read_own_writes;
        Alcotest.test_case "buffered-write apply order" `Quick test_apply_order;
        Alcotest.test_case "partial rollback drops intentions" `Quick
          test_partial_rollback_drops_intentions;
        Alcotest.test_case "validation-abort retry" `Quick
          test_validation_abort_retry;
        Alcotest.test_case "escrow deposit/deposit non-abort" `Quick
          test_escrow_deposits_commute;
        Alcotest.test_case "escrow deposit/deposit rw abort" `Quick
          test_escrow_deposits_rw_abort;
        Alcotest.test_case "write-skew: commute aborts one" `Quick
          test_write_skew_commute_aborts_one;
        Alcotest.test_case "write-skew: rw aborts one" `Quick
          test_write_skew_rw_aborts_one;
        Alcotest.test_case "write-skew: unvalidated mutant skews" `Quick
          test_write_skew_unvalidated_skews;
        QCheck_alcotest.to_alcotest occ_history_prop;
      ] );
  ]
