(* The benchmark / experiment harness.

     dune exec bench/main.exe                # everything: F1-F8, E1-E5, micro
     dune exec bench/main.exe -- F4 E1       # a selection
     dune exec bench/main.exe -- --no-micro  # skip the bechamel section

   F1-F8 regenerate the paper's figures; E1-E5 are the quantitative
   experiments backing the paper's comparative claims (see DESIGN.md §5
   and EXPERIMENTS.md). *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_micro = List.mem "--no-micro" args in
  let wanted = List.filter (fun a -> a <> "--no-micro") args in
  let selected =
    if wanted = [] then Experiments.all
    else
      List.filter
        (fun (name, _) ->
          List.exists (fun w -> String.uppercase_ascii w = name) wanted)
        Experiments.all
  in
  if selected = [] && wanted <> [] && not (List.mem "micro" (List.map String.lowercase_ascii wanted)) then begin
    Fmt.epr "unknown experiment(s): %a; known: %a and 'micro'@."
      (Fmt.list ~sep:Fmt.sp Fmt.string) wanted
      (Fmt.list ~sep:Fmt.sp Fmt.string)
      (List.map fst Experiments.all);
    exit 1
  end;
  Fmt.pr "ooser experiment harness — Rakow, Gu & Neuhold, ICDE 1990@.";
  List.iter (fun (_, run) -> run ()) selected;
  let micro_wanted =
    wanted = [] || List.mem "micro" (List.map String.lowercase_ascii wanted)
  in
  if micro_wanted && not no_micro then Micro.run ();
  Fmt.pr "@.done.@."
