(* Minimal aligned-column table printing for the experiment reports. *)

let print ~title ~header rows =
  let all = header :: rows in
  let widths =
    List.fold_left
      (fun ws row ->
        List.mapi
          (fun i cell ->
            let cur = try List.nth ws i with _ -> 0 in
            max cur (String.length cell))
          row)
      (List.map String.length header)
      all
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line row =
    String.concat "  " (List.mapi (fun i c -> pad c (List.nth widths i)) row)
  in
  Fmt.pr "@.== %s ==@." title;
  Fmt.pr "%s@." (line header);
  Fmt.pr "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Fmt.pr "%s@." (line row)) rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
let i = string_of_int
