bench/main.ml: Array Experiments Fmt List Micro String Sys
