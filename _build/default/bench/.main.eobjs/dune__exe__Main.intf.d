bench/main.mli:
