bench/tables.ml: Fmt List Printf String
