(* The figure/table regeneration harness: one entry per paper artifact
   (F1-F8) and per quantitative experiment (E1-E5).  See DESIGN.md §5 for
   the index and EXPERIMENTS.md for paper-vs-measured. *)

open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng
module Dist = Ooser_sim.Dist
module Btree = Ooser_btree.Btree
open Ooser_storage

let metric out k = try List.assoc k out.Engine.metrics with Not_found -> 0

let run_protocol ~seed ~protocol_of db txns =
  let protocol = protocol_of (Database.spec_registry db) in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed);
    }
  in
  Engine.run ~config db ~protocol txns

(* -- F1: conventional transactions vs object-oriented operations ---------------- *)

let f1 () =
  (* financial-market side: flat transfers on small account objects *)
  let bank_p =
    { Banking.default_params with Banking.n_txns = 8; transfers_per_txn = 2 }
  in
  let bank_db, _ = Banking.setup ~semantics:`Escrow bank_p in
  let bank_txns = Banking.transactions ~rng:(Rng.create ~seed:41) bank_p in
  let bank =
    run_protocol ~seed:42 ~protocol_of:(fun reg -> Protocol.open_nested ~reg ())
      bank_db bank_txns
  in
  (* publication side: nested encyclopedia transactions over a complex
     structured object *)
  let enc_p =
    {
      Enc_workload.default_params with
      Enc_workload.n_txns = 8;
      ops_per_txn = 3;
      preload = 60;
      mix = Enc_workload.with_scans;
    }
  in
  let enc_db, _enc, enc_txns = Enc_workload.setup ~rng:(Rng.create ~seed:43) enc_p in
  let enc =
    run_protocol ~seed:44 ~protocol_of:(fun reg -> Protocol.open_nested ~reg ())
      enc_db enc_txns
  in
  let depth h =
    List.fold_left
      (fun m a -> max m (Ids.Action_id.depth (Action.id a)))
      0 (History.all_actions h)
  in
  let objects h =
    List.length
      (List.sort_uniq Obj_id.compare
         (List.map Action.obj (History.all_actions h)))
  in
  let actions_per_txn h =
    float_of_int (List.length (History.all_actions h))
    /. float_of_int (max 1 (List.length (History.top_ids h)))
  in
  let row label out =
    let h = out.Engine.history in
    [
      label;
      Tables.i (objects h);
      Tables.f1 (actions_per_txn h);
      Tables.i (depth h);
      Tables.i out.Engine.steps;
      Tables.i (metric out "waits");
      Tables.i (Baselines.conflicting_primitive_pairs h);
      Tables.i (Baselines.conflict_pairs h `Oo);
    ]
  in
  (* the ADT-composed store: flat-ish but semantically rich *)
  let inv_db = Database.create () in
  let _inv, inv_txns =
    Inventory.setup ~rng:(Rng.create ~seed:45) Inventory.default_params inv_db
  in
  let inv =
    run_protocol ~seed:46 ~protocol_of:(fun reg -> Protocol.open_nested ~reg ())
      inv_db inv_txns
  in
  (* the three-level compound document: deep nesting *)
  let book_db = Database.create () in
  let book = Compound_doc.create ~chapters:3 ~sections_per_chapter:4 book_db in
  let book_txns =
    List.init 6 (fun i ->
        ( i + 1,
          Printf.sprintf "author%d" (i + 1),
          fun ctx ->
            Compound_doc.edit book ctx ~chapter:(i mod 3) ~section:(i mod 4)
              ~text:"revision";
            Value.unit ))
  in
  let bookr =
    run_protocol ~seed:47 ~protocol_of:(fun reg -> Protocol.open_nested ~reg ())
      book_db book_txns
  in
  Tables.print ~title:"F1  conventional transactions vs object-oriented operations"
    ~header:
      [ "workload"; "objects"; "actions/txn"; "nesting"; "steps"; "waits";
        "prim-conflicts"; "top-conflicts" ]
    [
      row "financial (accounts)" bank;
      row "inventory (ADTs)" inv;
      row "publication (encyclopedia)" enc;
      row "book (3-level document)" bookr;
    ]

(* -- F2: the encyclopedia structure (Fig. 2) ------------------------------------- *)

let f2 () =
  let rows =
    List.map
      (fun (fanout, items) ->
        let db = Database.create () in
        let enc = Encyclopedia.create ~fanout db in
        Enc_workload.preload db enc ~keys:items;
        let s = Encyclopedia.structure enc in
        [
          Tables.i fanout;
          Tables.i items;
          Tables.i s.Encyclopedia.height;
          Tables.i s.Encyclopedia.internal_nodes;
          Tables.i s.Encyclopedia.leaf_nodes;
          Tables.i s.Encyclopedia.keys;
          Tables.i s.Encyclopedia.items;
          Tables.i s.Encyclopedia.pages;
        ])
      [ (4, 40); (8, 120); (16, 400) ]
  in
  Tables.print
    ~title:"F2  encyclopedia structure: Enc -> {BpTree, LinkedList} -> nodes/items -> pages"
    ~header:
      [ "fanout"; "inserted"; "height"; "internal"; "leaves"; "keys"; "items"; "pages" ]
    rows

(* -- F3: legend ------------------------------------------------------------------- *)

let f3 () =
  Fmt.pr
    "@.== F3  legend (Fig. 3) ==@.notation only — dependencies are printed as \
     'a -> b' (b depends on a),@.commuting calls marked by stopping the \
     inheritance; nothing to measure.@."

(* -- F4: Example 1 (Fig. 4) --------------------------------------------------------- *)

let f4 () =
  let show title h =
    let sched = Schedule.compute h in
    let rows =
      List.filter_map
        (fun os ->
          let deps = Action.Rel.edges os.Schedule.txn_dep in
          if deps = [] then None
          else
            Some
              [
                Obj_id.to_string os.Schedule.obj;
                String.concat ", "
                  (List.map
                     (fun (a, b) ->
                       Printf.sprintf "%s -> %s"
                         (Ids.Action_id.to_string a)
                         (Ids.Action_id.to_string b))
                     deps);
              ])
        (Schedule.objects sched)
    in
    Tables.print ~title ~header:[ "object"; "transaction dependencies" ] rows;
    Fmt.pr "oo-serializable=%b conventional=%b top-conflicts: conventional=%d oo=%d@."
      (Serializability.oo_serializable h)
      (Baselines.conventional_serializable h)
      (Baselines.conflict_pairs h `Conventional)
      (Baselines.conflict_pairs h `Oo)
  in
  show "F4a  Example 1: inserts of different keys (inheritance stops at Leaf11)"
    (Paper_examples.example1_different_keys ());
  show "F4b  Example 1: insert vs search of one key (inherited to the top)"
    (Paper_examples.example1_same_key ())

(* -- F5: the transaction tree (Fig. 5) ----------------------------------------------- *)

let f5 () =
  let t = Paper_examples.example2_tree () in
  Fmt.pr "@.== F5  oo-transaction tree (Fig. 5) ==@.%a@." Call_tree.pp t;
  Fmt.pr "size=%d height=%d primitives=%d valid=%b@." (Call_tree.size t)
    (Call_tree.height t)
    (List.length (Call_tree.primitives t))
    (Call_tree.validate t = Ok ())

(* -- F6: the virtual extension (Fig. 6) ----------------------------------------------- *)

let f6 () =
  let h = Paper_examples.example3_history () in
  let ext = Extension.extend h in
  Fmt.pr "@.== F6  system extension (Fig. 6) ==@.";
  List.iter
    (fun vo ->
      let acts = Extension.acts_of ext vo in
      Fmt.pr "virtual object %a hosts: %a@." Obj_id.pp vo
        (Fmt.list ~sep:Fmt.sp Ids.Action_id.pp)
        (Ids.Action_id.Set.elements acts))
    (Extension.virtual_objects ext);
  Fmt.pr "oo-serializable=%b@." (Serializability.oo_serializable h)

(* -- F7/F8: Example 4 (Figs. 7-8) ------------------------------------------------------ *)

let f7 () =
  let h = Paper_examples.example4_crossing () in
  Fmt.pr "@.== F7  Example 4: crossing interleaving of T1 and T3 ==@.";
  Fmt.pr "conventionally serializable: %b@." (Baselines.conventional_serializable h);
  Fmt.pr "oo-serializable:             %b@." (Serializability.oo_serializable h);
  Fmt.pr "page-level conflicting pairs: %d, surviving at top: %d@."
    (Baselines.conflicting_primitive_pairs h)
    (Baselines.conflict_pairs h `Oo)

let f8 () =
  let h = Paper_examples.example4_serial () in
  let sched = Schedule.compute h in
  let summarize edges =
    let fmt (a, b) =
      Printf.sprintf "%s -> %s"
        (Ids.Action_id.to_string a)
        (Ids.Action_id.to_string b)
    in
    let n = List.length edges in
    if n <= 4 then String.concat ", " (List.map fmt edges)
    else
      Printf.sprintf "%s, ... (%d total)"
        (String.concat ", " (List.map fmt (List.filteri (fun i _ -> i < 3) edges)))
        n
  in
  let rows =
    List.filter_map
      (fun os ->
        let deps = Action.Rel.edges os.Schedule.txn_dep in
        let added =
          List.filter
            (fun e -> not (List.mem e deps))
            (Action.Rel.edges os.Schedule.added_dep)
        in
        if deps = [] && added = [] then None
        else
          Some
            [
              Obj_id.to_string os.Schedule.obj;
              summarize deps;
              summarize added;
            ])
      (Schedule.objects sched)
  in
  Tables.print ~title:"F8  Example 4: per-object schedule dependencies (Fig. 8)"
    ~header:[ "object"; "transaction dependencies"; "added (Def. 15)" ]
    rows;
  Fmt.pr "oo-serializable=%b@." (Serializability.oo_serializable h)

(* -- E1: rate of conflicting accesses, conventional vs oo ------------------------------- *)

let e1 () =
  let rows =
    List.concat_map
      (fun fanout ->
        List.concat_map
          (fun (skew_label, dist) ->
            List.map
              (fun mpl ->
                let p =
                  {
                    Enc_workload.n_txns = mpl;
                    ops_per_txn = 3;
                    preload = 40;
                    dist;
                    mix = Enc_workload.insert_heavy;
                  }
                in
                let db, _enc, txns =
                  Enc_workload.setup ~fanout ~rng:(Rng.create ~seed:(fanout + mpl)) p
                in
                let out =
                  run_protocol ~seed:(fanout * mpl)
                    ~protocol_of:(fun reg -> Protocol.open_nested ~reg ())
                    db txns
                in
                let h = out.Engine.history in
                let raw = Baselines.conflicting_primitive_pairs h in
                let total = Baselines.inter_transaction_primitive_pairs h in
                let oo = Baselines.conflict_pairs h `Oo in
                let conv = Baselines.conflict_pairs h `Conventional in
                [
                  Tables.i fanout;
                  skew_label;
                  Tables.i mpl;
                  Tables.i total;
                  Tables.i raw;
                  Tables.pct (float_of_int raw /. float_of_int (max 1 total));
                  Tables.i conv;
                  Tables.i oo;
                  (if conv = 0 then "-"
                   else Tables.f2 (float_of_int oo /. float_of_int conv));
                ])
              [ 2; 8 ])
          [ ("uniform", Dist.uniform 200); ("zipf0.9", Dist.zipf ~theta:0.9 200) ])
      [ 4; 16; 64 ]
  in
  Tables.print
    ~title:
      "E1  rate of conflicting accesses (encyclopedia; conv = serialization-graph \
       edges from page conflicts, oo = edges surviving semantic inheritance)"
    ~header:
      [ "fanout"; "skew"; "txns"; "prim-pairs"; "conflicting"; "rate";
        "conv-edges"; "oo-edges"; "oo/conv" ]
    rows

(* -- E2: protocol throughput ------------------------------------------------------------ *)

let e2 () =
  let protocols =
    [
      ("flat-2pl", fun reg -> Protocol.flat_2pl ~reg ());
      ("closed-nested", fun reg -> Protocol.closed_nested ~reg ());
      ("open-nested", fun reg -> Protocol.open_nested ~reg ());
    ]
  in
  let rows =
    List.concat_map
      (fun mpl ->
        List.map
          (fun (label, protocol_of) ->
            let p =
              {
                Enc_workload.default_params with
                Enc_workload.n_txns = mpl;
                ops_per_txn = 3;
                preload = 40;
              }
            in
            let db, _enc, txns =
              Enc_workload.setup ~fanout:8 ~rng:(Rng.create ~seed:(100 + mpl)) p
            in
            let out = run_protocol ~seed:(200 + mpl) ~protocol_of db txns in
            let committed = List.length out.Engine.committed in
            let mean_latency =
              match out.Engine.latencies with
              | [] -> 0.0
              | ls ->
                  float_of_int (List.fold_left (fun a (_, l) -> a + l) 0 ls)
                  /. float_of_int (List.length ls)
            in
            [
              Tables.i mpl;
              label;
              Tables.i committed;
              Tables.i out.Engine.steps;
              Tables.f3
                (float_of_int committed /. float_of_int (max 1 out.Engine.steps)
                *. 1000.);
              Tables.f1 mean_latency;
              Tables.i (metric out "waits");
              Tables.i (metric out "restarts");
              Tables.i (metric out "deadlocks");
            ])
          protocols)
      [ 2; 4; 8; 16 ]
  in
  Tables.print
    ~title:
      "E2  protocol comparison (encyclopedia insert-heavy; committed/1000 steps; \
       closed nesting blocks like flat for sequential transactions)"
    ~header:
      [ "txns"; "protocol"; "committed"; "steps"; "thruput"; "latency"; "waits";
        "restarts"; "deadlocks" ]
    rows

(* -- E3: acceptance rate of random interleavings ------------------------------------------- *)

let e3 ?(samples = 40) ?(systems = 8) () =
  let rows granularity glabel =
    List.map
      (fun p_commute ->
        let p =
          {
            Random_schedules.default_params with
            Random_schedules.p_commute;
            n_txns = 4;
            n_pages = 3;
          }
        in
        let totals =
          List.fold_left
            (fun (c, m, o) seed ->
              let a = Random_schedules.acceptance ~granularity ~seed ~samples p in
              ( c + a.Random_schedules.conventional_accepted,
                m + a.Random_schedules.multilevel_accepted,
                o + a.Random_schedules.oo_accepted ))
            (0, 0, 0)
            (List.init systems (fun i -> 7 + (13 * i)))
        in
        let total = samples * systems in
        let c, m, o = totals in
        let rate n = Tables.pct (float_of_int n /. float_of_int total) in
        [ glabel; Tables.f2 p_commute; Tables.i total; rate c; rate m; rate o ])
      [ 0.0; 0.3; 0.6; 0.9 ]
  in
  Tables.print
    ~title:
      "E3  acceptance rate of random interleavings (conventional ⊆ multilevel ⊆ oo; \
       subtransaction granularity keeps mid-level calls atomic)"
    ~header:
      [ "granularity"; "p-commute"; "samples"; "conventional"; "multilevel"; "oo" ]
    (rows `Primitive "primitive" @ rows `Subtransaction "subtxn");
  (* exact enumeration on a small system, verifying the sampling *)
  let exact_rows =
    List.map
      (fun p_commute ->
        let p =
          {
            Random_schedules.default_params with
            Random_schedules.n_txns = 2;
            calls_per_txn = 2;
            prims_per_call = 2;
            p_commute;
          }
        in
        let tops, commut = Random_schedules.system ~seed:25 p in
        let e = Enumerate.exact_acceptance ~commut tops in
        let rate n = Tables.pct (float_of_int n /. float_of_int e.Enumerate.total) in
        [
          Tables.f2 p_commute;
          Tables.i e.Enumerate.total;
          rate e.Enumerate.conventional;
          rate e.Enumerate.multilevel;
          rate e.Enumerate.oo;
          string_of_bool e.Enumerate.inclusions_hold;
        ])
      [ 0.0; 0.3; 0.6; 0.9 ]
  in
  Tables.print
    ~title:
      "E3x exact acceptance over ALL interleavings of a 2x2x2 system (seed 25); \
       the inclusion chain is checked on every interleaving"
    ~header:
      [ "p-commute"; "interleavings"; "conventional"; "multilevel"; "oo";
        "inclusions" ]
    exact_rows;;

(* -- E4: B+ tree ablation --------------------------------------------------------------------- *)

let e4 () =
  (* storage-level costs per fanout *)
  let storage_rows =
    List.map
      (fun fanout ->
        let disk = Disk.create ~page_size:4096 () in
        let pool = Buffer_pool.create ~capacity:128 disk in
        let t = Btree.create ~max_entries:fanout pool in
        for i = 1 to 500 do
          Btree.insert t (Printf.sprintf "k%05d" (i * 37 mod 1000)) "v"
        done;
        (* delete half the keys: merges/borrows enter the picture *)
        for i = 1 to 250 do
          ignore (Btree.delete t (Printf.sprintf "k%05d" (i * 37 mod 1000)))
        done;
        let s = Btree.stats t in
        [
          Tables.i fanout;
          Tables.i s.Btree.height;
          Tables.i (s.Btree.internal_nodes + s.Btree.leaves);
          Tables.i (Btree.splits t);
          Tables.i (Btree.merges t);
          Tables.i (Btree.borrows t);
          Tables.i (Btree.node_reads t);
          Tables.i (Btree.node_writes t);
          Tables.f2 s.Btree.avg_fill;
        ])
      [ 4; 8; 16; 64; 256 ]
  in
  Tables.print
    ~title:
      "E4a  B+ tree storage costs, 500 inserts then 250 deletes (standalone \
       index manager)"
    ~header:
      [ "fanout"; "height"; "nodes"; "splits"; "merges"; "borrows";
        "node-reads"; "node-writes"; "fill" ]
    storage_rows;
  (* concurrency: concurrent inserts through the object layer *)
  let concurrency_rows =
    List.concat_map
      (fun fanout ->
        List.map
          (fun (label, protocol_of) ->
            let db = Database.create () in
            let enc = Encyclopedia.create ~fanout db in
            Enc_workload.preload db enc ~keys:30;
            let body lo ctx =
              for i = lo to lo + 9 do
                Encyclopedia.insert enc ctx
                  ~key:(Printf.sprintf "n%04d" i)
                  ~text:"x"
              done;
              Value.unit
            in
            let txns =
              [ (1, "w1", body 100); (2, "w2", body 200); (3, "w3", body 300);
                (4, "w4", body 400) ]
            in
            let out = run_protocol ~seed:fanout ~protocol_of db txns in
            [
              Tables.i fanout;
              label;
              Tables.i (List.length out.Engine.committed);
              Tables.i out.Engine.steps;
              Tables.i (metric out "waits");
              Tables.i (metric out "restarts");
            ])
          [
            ("flat-2pl", fun reg -> Protocol.flat_2pl ~reg ());
            ("open-nested", fun reg -> Protocol.open_nested ~reg ());
          ])
      [ 4; 16 ]
  in
  Tables.print
    ~title:"E4b  concurrent inserts through the object layer (4 writers x 10 keys)"
    ~header:[ "fanout"; "protocol"; "committed"; "steps"; "waits"; "restarts" ]
    concurrency_rows

(* -- E5: semantics ablation --------------------------------------------------------------------- *)

let e5 () =
  let rows =
    List.concat_map
      (fun mpl ->
        List.map
          (fun (label, semantics) ->
            let p =
              {
                Banking.default_params with
                Banking.n_txns = mpl;
                transfers_per_txn = 4;
                accounts = 8;
              }
            in
            let db, counters = Banking.setup ~semantics p in
            let txns = Banking.transactions ~rng:(Rng.create ~seed:(300 + mpl)) p in
            let out =
              run_protocol ~seed:(400 + mpl)
                ~protocol_of:(fun reg -> Protocol.open_nested ~reg ())
                db txns
            in
            [
              Tables.i mpl;
              label;
              Tables.i (List.length out.Engine.committed);
              Tables.i out.Engine.steps;
              Tables.i (metric out "waits");
              Tables.i (metric out "restarts");
              Tables.i (Banking.total_balance counters);
            ])
          [ ("escrow", `Escrow); ("read/write", `Rw); ("all-conflict", `Conflict) ])
      [ 4; 8; 16 ]
  in
  Tables.print
    ~title:"E5  commutativity granularity ablation (banking transfers, open nesting)"
    ~header:[ "txns"; "semantics"; "committed"; "steps"; "waits"; "restarts"; "total" ]
    rows

(* -- E6: optimistic certification vs locking ------------------------------------ *)

let e6 () =
  let modes =
    [
      ("open-nested", `Locking (fun reg -> Protocol.open_nested ~reg ()));
      ("flat-2pl", `Locking (fun reg -> Protocol.flat_2pl ~reg ()));
      ("certifier", `Certify);
    ]
  in
  let rows =
    List.concat_map
      (fun mpl ->
        List.map
          (fun (label, mode) ->
            let p =
              {
                Enc_workload.default_params with
                Enc_workload.n_txns = mpl;
                ops_per_txn = 3;
                preload = 40;
              }
            in
            let db, _enc, txns =
              Enc_workload.setup ~fanout:8 ~rng:(Rng.create ~seed:(500 + mpl)) p
            in
            let protocol, certify =
              match mode with
              | `Locking protocol_of -> (protocol_of (Database.spec_registry db), false)
              | `Certify -> (Protocol.unlocked (), true)
            in
            let config =
              {
                (Engine.default_config protocol) with
                Engine.certify;
                Engine.strategy = Engine.Random_pick (Rng.create ~seed:(600 + mpl));
              }
            in
            let out = Engine.run ~config db ~protocol txns in
            [
              Tables.i mpl;
              label;
              Tables.i (List.length out.Engine.committed);
              Tables.i out.Engine.steps;
              Tables.i (metric out "waits");
              Tables.i (metric out "restarts");
              Tables.i (metric out "certification-failures");
            ])
          modes)
      [ 2; 4; 8 ]
  in
  Tables.print
    ~title:
      "E6  pessimistic locking vs optimistic certification (§6 direction: commit-time \
       oo-serializability validation, no locks)"
    ~header:
      [ "txns"; "mode"; "committed"; "steps"; "waits"; "restarts"; "cert-failures" ]
    rows

(* -- E7: deadlock handling ablation ----------------------------------------------- *)

let e7 () =
  let rows =
    List.concat_map
      (fun mpl ->
        List.map
          (fun (label, policy) ->
            let p =
              {
                Enc_workload.default_params with
                Enc_workload.n_txns = mpl;
                ops_per_txn = 3;
                preload = 40;
              }
            in
            let db, _enc, txns =
              Enc_workload.setup ~fanout:8 ~rng:(Rng.create ~seed:(700 + mpl)) p
            in
            let protocol =
              Protocol.flat_2pl ~reg:(Database.spec_registry db) ()
            in
            let config =
              {
                (Engine.default_config protocol) with
                Engine.deadlock = policy;
                Engine.strategy = Engine.Random_pick (Rng.create ~seed:(800 + mpl));
              }
            in
            let out = Engine.run ~config db ~protocol txns in
            [
              Tables.i mpl;
              label;
              Tables.i (List.length out.Engine.committed);
              Tables.i out.Engine.steps;
              Tables.i (metric out "waits");
              Tables.i (metric out "deadlocks");
              Tables.i (metric out "wounds");
              Tables.i (metric out "dies");
              Tables.i (metric out "restarts");
            ])
          [ ("detect", Engine.Detect); ("wound-wait", Engine.Wound_wait);
            ("wait-die", Engine.Wait_die) ])
      [ 4; 8; 16 ]
  in
  Tables.print
    ~title:
      "E7  deadlock handling under flat 2PL (detection + victim restart vs \
       wound-wait / wait-die prevention)"
    ~header:
      [ "txns"; "policy"; "committed"; "steps"; "waits"; "deadlocks"; "wounds";
        "dies"; "restarts" ]
    rows

let all =
  [
    ("F1", f1); ("F2", f2); ("F3", f3); ("F4", f4); ("F5", f5); ("F6", f6);
    ("F7", f7); ("F8", f8);
    ("E1", e1); ("E2", e2); ("E3", fun () -> e3 ()); ("E4", e4); ("E5", e5);
    ("E6", e6); ("E7", e7);
  ]
