examples/banking_escrow.ml: Banking Database Engine Fmt List Ooser_cc Ooser_oodb Ooser_sim Ooser_workload
