examples/quickstart.mli:
