examples/cooperative_editing.ml: Baselines Database Document Engine Fmt List Ooser_cc Ooser_core Ooser_oodb Ooser_sim Ooser_workload Printf Serializability Value
