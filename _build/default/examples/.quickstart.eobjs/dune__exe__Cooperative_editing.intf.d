examples/cooperative_editing.mli:
