examples/inventory_orders.ml: Database Engine Fmt Inventory List Ooser_cc Ooser_core Ooser_oodb Ooser_sim Ooser_workload Printf Serializability Value
