examples/encyclopedia_demo.ml: Action Baselines Database Encyclopedia Engine Fmt Ids List Obj_id Ooser_cc Ooser_core Ooser_oodb Ooser_sim Schedule Serializability Value
