examples/banking_escrow.mli:
