examples/recovery_demo.ml: Fmt Logged_store Ooser_storage
