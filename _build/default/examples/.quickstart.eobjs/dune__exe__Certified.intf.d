examples/certified.mli:
