examples/quickstart.ml: Baselines Commutativity Database Engine Fmt History Ids Obj_id Ooser_cc Ooser_core Ooser_oodb Runtime Serializability Value
