examples/certified.ml: Commutativity Database Engine Fmt List Obj_id Ooser_cc Ooser_core Ooser_oodb Ooser_sim Runtime Serializability Value
