examples/encyclopedia_demo.mli:
