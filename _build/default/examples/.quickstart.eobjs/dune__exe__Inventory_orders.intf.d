examples/inventory_orders.mli:
