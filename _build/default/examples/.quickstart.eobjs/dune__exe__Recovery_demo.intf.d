examples/recovery_demo.mli:
