(* Inventory and order processing over the semantic abstract data types
   (§2: escrow counters, directory, FIFO queue):

     dune exec examples/inventory_orders.exe

   Six buyers order concurrently.  While stock is ample the escrow test
   makes all orders commute — no waiting at all; when stock runs short,
   insufficient debits fail softly (partial rollback via try_call) and
   the orders are rejected while the rest of each transaction goes on. *)

open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let run ~label ~initial_stock =
  let db = Database.create () in
  let inv = Inventory.create ~products:2 ~initial_stock db in
  let accepted = ref 0 in
  let buyer i ctx =
    (match
       Inventory.place_order inv ctx
         ~product:(if i mod 2 = 0 then "p0" else "p1")
         ~qty:4
     with
    | Some _ -> incr accepted
    | None -> ());
    Value.unit
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:15);
    }
  in
  let out =
    Engine.run ~config db ~protocol
      (List.init 6 (fun i -> (i + 1, Printf.sprintf "buyer%d" (i + 1), buyer i)))
  in
  Fmt.pr "%-14s committed=%d accepted-orders=%d waits=%d stock=(%d, %d) revenue=%d queue=%d@."
    label
    (List.length out.Engine.committed)
    !accepted
    (try List.assoc "waits" out.Engine.metrics with Not_found -> 0)
    (Inventory.stock_level inv 0)
    (Inventory.stock_level inv 1)
    (Inventory.revenue_total inv)
    (Inventory.pending_orders inv);
  Fmt.pr "%-14s history oo-serializable: %b@." ""
    (Serializability.oo_serializable out.Engine.history)

let () =
  Fmt.pr "6 buyers x 1 order of 4 units, 2 products, open nesting@.@.";
  run ~label:"ample stock" ~initial_stock:100;
  Fmt.pr "@.";
  run ~label:"scarce stock" ~initial_stock:7;
  Fmt.pr
    "@.with ample stock every order commutes under the escrow test; with 7@.";
  Fmt.pr
    "units only one 4-unit order per product fits — the rest fail softly@.";
  Fmt.pr "(try_call partial rollback) without aborting their transactions.@."
