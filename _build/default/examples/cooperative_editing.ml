(* Cooperative editing of one document by several authors (§1's
   publication-environment motivation, Fig. 1):

     dune exec examples/cooperative_editing.exe

   Four authors edit different sections concurrently; sections share
   pages, so their page accesses conflict — under flat page-level 2PL the
   authors serialize, under open nesting they run concurrently because
   edits of different sections commute at the document level.  A layout
   pass conflicts with every edit under both protocols. *)

open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let run_authors ~label ~protocol_of =
  let db = Database.create () in
  let doc = Document.create ~sections:8 ~sections_per_page:4 db in
  let author i ctx =
    Document.edit doc ctx ~section:i ~text:(Printf.sprintf "draft by author %d" i);
    Value.unit
  in
  let layouter ctx =
    let parts = Document.layout doc ctx in
    Value.int (List.length parts)
  in
  let protocol = protocol_of (Database.spec_registry db) in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:13);
    }
  in
  let out =
    Engine.run ~config db ~protocol
      [
        (1, "author-intro", author 0);
        (2, "author-model", author 1);
        (3, "author-eval", author 2);
        (4, "author-concl", author 3);
        (5, "layout", layouter);
      ]
  in
  Fmt.pr "%-12s committed=%d steps=%d lock-conflicts=%d waits=%d restarts=%d@."
    label
    (List.length out.Engine.committed)
    out.Engine.steps
    (try List.assoc "lock.conflicts" out.Engine.metrics with Not_found -> 0)
    (try List.assoc "waits" out.Engine.metrics with Not_found -> 0)
    (try List.assoc "restarts" out.Engine.metrics with Not_found -> 0);
  out

let () =
  Fmt.pr "cooperative editing: 4 authors + 1 layout pass, sections share pages@.@.";
  let flat = run_authors ~label:"flat-2pl" ~protocol_of:(fun reg -> Protocol.flat_2pl ~reg ()) in
  let opn = run_authors ~label:"open-nested" ~protocol_of:(fun reg -> Protocol.open_nested ~reg ()) in
  Fmt.pr "@.histories: flat conventional-SR=%b, open oo-SR=%b@."
    (Baselines.conventional_serializable flat.Engine.history)
    (Serializability.oo_serializable opn.Engine.history);
  Fmt.pr
    "top-level conflicting pairs under open nesting: %d (only the layout pass)@."
    (Baselines.conflict_pairs opn.Engine.history `Oo);
  Fmt.pr "top-level conflicting pairs conventionally:  %d@."
    (Baselines.conflict_pairs opn.Engine.history `Conventional)
