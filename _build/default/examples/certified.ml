(* Optimistic concurrency control via commit-time certification — the
   §6 direction of the paper: no locks at all; a transaction commits only
   if the history of committed transactions plus itself is
   oo-serializable, otherwise it is rolled back (through the undo /
   compensation machinery) and retried.

     dune exec examples/certified.exe

   Two transactions update two conflicting cells in opposite orders
   without any locks; crossing interleavings are not serializable, so the
   certifier rejects and retries them until the committed history checks
   out.  Because execution is lock-free, the cells use LOGICAL undo
   (subtract what was added): rollbacks must never restore before-images
   that could clobber a neighbour's concurrent update — see
   Engine.config.certify. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let obj = Obj_id.v

let register_cell db name =
  let state = ref 0 in
  let add ctx args =
    match args with
    | [ Value.Int v ] ->
        Runtime.on_undo ctx (fun () -> state := !state - v);
        state := !state + v;
        Value.unit
    | _ -> invalid_arg "add"
  in
  Database.register db (obj name) ~spec:Commutativity.all_conflict
    [ ("add", Database.primitive add) ];
  state

let () =
  let db = Database.create () in
  let a = register_cell db "A" in
  let b = register_cell db "B" in
  let body flip ctx =
    let first, second = if flip then ("B", "A") else ("A", "B") in
    ignore (Runtime.call ctx (obj first) "add" [ Value.int 1 ]);
    ignore (Runtime.call ctx (obj second) "add" [ Value.int 1 ]);
    Value.unit
  in
  let protocol = Protocol.unlocked () in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.certify = true;
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:6);
    }
  in
  let out =
    Engine.run ~config db ~protocol
      [ (1, "a-then-b", body false); (2, "b-then-a", body true);
        (3, "a-then-b", body false) ]
  in
  Fmt.pr "committed:              %a@."
    (Fmt.list ~sep:Fmt.sp Fmt.int) out.Engine.committed;
  Fmt.pr "cell A / cell B:        %d / %d (each must equal the commits)@." !a !b;
  Fmt.pr "certification failures: %d@."
    (try List.assoc "certification-failures" out.Engine.metrics with Not_found -> 0);
  Fmt.pr "restarts:               %d@."
    (try List.assoc "restarts" out.Engine.metrics with Not_found -> 0);
  Fmt.pr "lock waits:             %d (no locks were taken)@."
    (try List.assoc "waits" out.Engine.metrics with Not_found -> 0);
  Fmt.pr "history oo-serializable: %b@."
    (Serializability.oo_serializable out.Engine.history)
