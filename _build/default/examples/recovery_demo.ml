(* Crash recovery walkthrough (the "reliably — as if there were no
   failures" promise of §1):

     dune exec examples/recovery_demo.exe

   Two transactions run against the logged store; one commits (its pages
   are never flushed — no-force), the other is still in flight when a
   dirty page holding its uncommitted data has already been stolen to
   disk.  The machine crashes; recovery replays the log (redo = repeating
   history) and rolls the loser back with compensation log records. *)

open Ooser_storage

let show store label page slot =
  match Logged_store.read_durable store page slot with
  | Some v -> Fmt.pr "  %-28s %S@." label v
  | None -> Fmt.pr "  %-28s (absent)@." label

let () =
  let store = Logged_store.create () in
  let accounts = Logged_store.alloc_page store in

  Fmt.pr "T1 deposits and commits (log forced, pages NOT flushed):@.";
  Logged_store.begin_txn store 1;
  Logged_store.write store ~txn:1 ~page:accounts ~slot:0 (Some "alice: 100");
  Logged_store.commit store 1;

  Fmt.pr "T2 updates but does not commit; its dirty page is stolen:@.";
  Logged_store.begin_txn store 2;
  Logged_store.write store ~txn:2 ~page:accounts ~slot:0 (Some "alice: 0");
  Logged_store.write store ~txn:2 ~page:accounts ~slot:1 (Some "mallory: 100");
  Logged_store.flush_page store accounts;

  Fmt.pr "@.=== CRASH ===@.@.";
  let store = Logged_store.crash store in
  Fmt.pr "durable state before recovery (torn!):@.";
  show store "alice" accounts 0;
  show store "mallory" accounts 1;

  let report = Logged_store.recover store in
  Fmt.pr "@.recovery: winners=%a losers=%a redone=%d undone=%d@."
    (Fmt.list ~sep:Fmt.sp Fmt.int) report.Logged_store.winners
    (Fmt.list ~sep:Fmt.sp Fmt.int) report.Logged_store.losers
    report.Logged_store.redone report.Logged_store.undone;

  Fmt.pr "@.durable state after recovery:@.";
  show store "alice (committed T1 value)" accounts 0;
  show store "mallory (T2 rolled back)" accounts 1;

  (* recovery is idempotent: crashing during recovery is harmless *)
  ignore (Logged_store.recover store);
  Fmt.pr "@.after recovering twice (idempotent):@.";
  show store "alice" accounts 0
