(* The paper's running example end to end (Fig. 2, Examples 1 & 4):

     dune exec examples/encyclopedia_demo.exe

   Builds the encyclopedia (B+ tree index + linked list of items over
   shared pages), runs the four transactions of Example 4 concurrently
   under open nested locking, prints the per-object dependency table
   (Fig. 8) and the serializability verdicts. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let () =
  let db = Database.create () in
  let enc = Encyclopedia.create ~fanout:4 db in

  (* populate a few items first, so updates and scans have work to do *)
  let seed ctx =
    List.iter
      (fun (key, text) -> Encyclopedia.insert enc ctx ~key ~text)
      [ ("ACID", "atomicity, consistency, ..."); ("B-tree", "balanced index") ];
    Value.unit
  in
  ignore (Engine.run db ~protocol:(Protocol.unlocked ()) [ (9, "seed", seed) ]);

  (* Example 4's four transactions *)
  let t1 ctx =
    Encyclopedia.insert enc ctx ~key:"DBMS" ~text:"database management system";
    Value.unit
  in
  let t2 ctx =
    ignore (Encyclopedia.update enc ctx ~key:"DBMS" ~text:"DBMS (revised)");
    Value.unit
  in
  let t3 ctx =
    Encyclopedia.insert enc ctx ~key:"DBS" ~text:"database system";
    Value.unit
  in
  let t4 ctx =
    let items = Encyclopedia.read_seq enc ctx in
    Fmt.pr "readSeq saw %d items@." (List.length items);
    Value.unit
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:2);
    }
  in
  let out =
    Engine.run ~config db ~protocol
      [ (1, "insert-DBMS", t1); (2, "update-DBMS", t2);
        (3, "insert-DBS", t3); (4, "readSeq", t4) ]
  in

  Fmt.pr "@.committed: %a   aborted: %a@."
    (Fmt.list ~sep:Fmt.sp Fmt.int) out.Engine.committed
    (Fmt.list ~sep:Fmt.sp (fun ppf (t, r) -> Fmt.pf ppf "%d(%s)" t r))
    out.Engine.aborted;
  Fmt.pr "@.encyclopedia structure (Fig. 2): %a@." Encyclopedia.pp_structure
    (Encyclopedia.structure enc);

  (* Fig. 8: the per-object dependency table *)
  let sched = Schedule.compute out.Engine.history in
  Fmt.pr "@.dependency table (Fig. 8):@.";
  List.iter
    (fun os ->
      let deps = Action.Rel.edges os.Schedule.txn_dep in
      if deps <> [] then
        Fmt.pr "  %-16s %a@." (Obj_id.to_string os.Schedule.obj)
          (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (a, b) ->
               Fmt.pf ppf "%a -> %a" Ids.Action_id.pp a Ids.Action_id.pp b))
          deps)
    (Schedule.objects sched);

  let v = Serializability.check out.Engine.history in
  Fmt.pr "@.oo-serializable: %b@." v.Serializability.oo_serializable;
  (match v.Serializability.witness with
  | Some w ->
      Fmt.pr "equivalent serial order: %a@."
        (Fmt.list ~sep:Fmt.sp Ids.Action_id.pp) w
  | None -> ());
  Fmt.pr "conventional top-level conflict pairs: %d, oo: %d@."
    (Baselines.conflict_pairs out.Engine.history `Conventional)
    (Baselines.conflict_pairs out.Engine.history `Oo);

  (* read the final state back *)
  let reader ctx =
    (match Encyclopedia.search enc ctx ~key:"DBMS" with
    | Some text -> Fmt.pr "@.DBMS -> %s@." text
    | None -> Fmt.pr "@.DBMS not found@.");
    Value.unit
  in
  ignore (Engine.run db ~protocol:(Protocol.unlocked ()) [ (8, "reader", reader) ])
