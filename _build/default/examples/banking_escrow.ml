(* Banking with escrow semantics (§2's commutativity refinements):

     dune exec examples/banking_escrow.exe

   The same transfer workload runs under three commutativity levels for
   the account objects — escrow (state- and parameter-dependent),
   read/write, and all-conflict — showing how richer semantics lower the
   conflict rate while the money total stays invariant. *)

open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let run semantics label =
  let p =
    { Banking.default_params with Banking.n_txns = 10; transfers_per_txn = 4 }
  in
  let db, counters = Banking.setup ~semantics p in
  let txns = Banking.transactions ~rng:(Rng.create ~seed:31) p in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:32);
    }
  in
  let out = Engine.run ~config db ~protocol txns in
  Fmt.pr "%-12s committed=%2d conflicts=%3d waits=%2d restarts=%2d total-balance=%d@."
    label
    (List.length out.Engine.committed)
    (try List.assoc "lock.conflicts" out.Engine.metrics with Not_found -> 0)
    (try List.assoc "waits" out.Engine.metrics with Not_found -> 0)
    (try List.assoc "restarts" out.Engine.metrics with Not_found -> 0)
    (Banking.total_balance counters)

let () =
  Fmt.pr "10 transfer transactions x 4 transfers, 10 accounts, open nesting@.@.";
  run `Escrow "escrow";
  run `Rw "read/write";
  run `Conflict "all-conflict";
  Fmt.pr
    "@.escrow <= read/write <= all-conflict in conflicts; the total balance@.";
  Fmt.pr "is preserved by every semantics (undo/compensation on abort).@."
