(* Quickstart: define two encapsulated objects, run two transactions under
   open nested locking, and check the resulting history with the
   oo-serializability checker.

     dune exec examples/quickstart.exe

   The scenario is the crossing schedule of DESIGN.md: T1 increments a
   counter then writes a register; T2 writes the register then increments
   the counter.  Conventionally the page-level conflicts cross and the
   schedule is rejected; with open nesting the commuting increments stop
   the inheritance and the schedule is accepted. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol

let obj = Obj_id.v

(* A register cell: primitive read/write with undo. *)
let register_cell db name init =
  let state = ref init in
  let read _ _ = Value.int !state in
  let write ctx args =
    match args with
    | [ Value.Int v ] ->
        let old = !state in
        Runtime.on_undo ctx (fun () -> state := old);
        state := v;
        Value.unit
    | _ -> invalid_arg "write"
  in
  Database.register db (obj name)
    ~spec:(Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ])
    [ ("read", Database.primitive read); ("write", Database.primitive write) ]

(* A counter over a register: composite increment; increments commute. *)
let register_counter db name cell =
  let incr ctx _ =
    let v = Value.to_int_exn (Runtime.call ctx (obj cell) "read" []) in
    ignore (Runtime.call ctx (obj cell) "write" [ Value.int (v + 1) ]);
    Value.unit
  in
  Database.register db (obj name)
    ~spec:(Commutativity.of_commute_matrix ~name:"counter" [ ("incr", "incr") ])
    [ ("incr", Database.composite incr) ]

let () =
  let db = Database.create () in
  register_cell db "CounterCell" 0;
  register_cell db "Register" 0;
  register_counter db "Counter" "CounterCell";
  let t1 ctx =
    ignore (Runtime.call ctx (obj "Counter") "incr" []);
    ignore (Runtime.call ctx (obj "Register") "write" [ Value.int 1 ]);
    Value.unit
  in
  let t2 ctx =
    ignore (Runtime.call ctx (obj "Register") "write" [ Value.int 2 ]);
    ignore (Runtime.call ctx (obj "Counter") "incr" []);
    Value.unit
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol [ (1, "t1", t1); (2, "t2", t2) ] in

  Fmt.pr "committed transactions: %a@."
    (Fmt.list ~sep:Fmt.sp Fmt.int)
    out.Engine.committed;
  Fmt.pr "@.execution history:@.%a@.@." History.pp out.Engine.history;

  let verdict = Serializability.check out.Engine.history in
  Fmt.pr "oo-serializable:            %b@."
    verdict.Serializability.oo_serializable;
  Fmt.pr "conventionally serializable: %b@."
    (Baselines.conventional_serializable out.Engine.history);
  (match verdict.Serializability.witness with
  | Some w ->
      Fmt.pr "equivalent serial order:     %a@."
        (Fmt.list ~sep:Fmt.sp Ids.Action_id.pp)
        w
  | None -> ());
  Fmt.pr "@.top-level conflicting pairs: conventional=%d oo=%d@."
    (Baselines.conflict_pairs out.Engine.history `Conventional)
    (Baselines.conflict_pairs out.Engine.history `Oo)
