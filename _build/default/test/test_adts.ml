(* Unit and property tests for the semantic abstract data types. *)

open Ooser_core
open Ooser_adts

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let act ?(top = 1) ?(args = []) meth =
  Action.v
    ~id:(Ids.Action_id.v ~top ~path:[ 1 ])
    ~obj:(Obj_id.v "X") ~meth ~args
    ~process:(Ids.Process_id.main top)
    ()

let test_escrow_basic () =
  let c = Escrow_counter.create ~low:0 ~high:10 5 in
  Escrow_counter.incr c 3;
  check_int "after incr" 8 (Escrow_counter.value c);
  Escrow_counter.decr c 8;
  check_int "after decr" 0 (Escrow_counter.value c);
  check_bool "bounds violation" true
    (match Escrow_counter.decr c 1 with
    | exception Escrow_counter.Bounds_violation _ -> true
    | () -> false);
  check_bool "negative amount" true
    (match Escrow_counter.incr c (-1) with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_escrow_commutativity () =
  let c = Escrow_counter.create ~low:0 ~high:10 5 in
  let spec = Escrow_counter.spec c in
  let incr top n = act ~top ~args:[ Value.int n ] "incr" in
  let decr top n = act ~top ~args:[ Value.int n ] "decr" in
  let read top = act ~top "read" in
  check_bool "small updates commute" true
    (Commutativity.test spec (incr 1 2) (decr 2 3));
  (* incr 4 and incr 4 from value 5 with high 10: each alone fits, both
     together overflow: must conflict *)
  check_bool "jointly overflowing updates conflict" false
    (Commutativity.test spec (incr 1 4) (incr 2 4));
  check_bool "read conflicts with update" false
    (Commutativity.test spec (read 1) (incr 2 1));
  check_bool "reads commute" true (Commutativity.test spec (read 1) (read 2));
  (* state-dependence: after draining the counter, decrements conflict *)
  Escrow_counter.decr c 5;
  check_bool "empty counter: decrements conflict" false
    (Commutativity.test spec (decr 1 1) (decr 2 1))

let test_kv_set () =
  let s = Kv_set.create () in
  Kv_set.insert s (Value.str "a");
  Kv_set.insert s (Value.str "a");
  Kv_set.insert s (Value.str "b");
  check_int "cardinal dedups" 2 (Kv_set.cardinal s);
  check_int "insertion count tracked" 2 (Kv_set.count s (Value.str "a"));
  Kv_set.decr_count s (Value.str "a");
  check_bool "still member after one decrement" true
    (Kv_set.mem s (Value.str "a"));
  Kv_set.decr_count s (Value.str "a");
  check_bool "gone after both decrements" false (Kv_set.mem s (Value.str "a"));
  Kv_set.insert s (Value.str "a");
  check_int "remove reports dropped count" 1 (Kv_set.remove s (Value.str "a"));
  check_bool "removed" false (Kv_set.mem s (Value.str "a"));
  let spec = Kv_set.spec in
  let ins k top = act ~top ~args:[ Value.str k ] "insert" in
  let con k top = act ~top ~args:[ Value.str k ] "contains" in
  let rem k top = act ~top ~args:[ Value.str k ] "remove" in
  check_bool "different keys commute" true
    (Commutativity.test spec (ins "x" 1) (rem "y" 2));
  check_bool "same-key inserts commute (idempotent)" true
    (Commutativity.test spec (ins "x" 1) (ins "x" 2));
  check_bool "insert/contains conflict" false
    (Commutativity.test spec (ins "x" 1) (con "x" 2));
  check_bool "insert/remove conflict" false
    (Commutativity.test spec (ins "x" 1) (rem "x" 2))

let test_fifo_queue () =
  let q = Fifo_queue.create () in
  check_bool "empty" true (Fifo_queue.is_empty q);
  Fifo_queue.enqueue q (Value.int 1);
  Fifo_queue.enqueue q (Value.int 2);
  Fifo_queue.enqueue q (Value.int 3);
  check_int "length" 3 (Fifo_queue.length q);
  Alcotest.(check (option int)) "fifo order" (Some 1)
    (Option.bind (Fifo_queue.dequeue q) Value.to_int);
  Alcotest.(check (option int)) "peek" (Some 2)
    (Option.bind (Fifo_queue.peek q) Value.to_int);
  Alcotest.(check (option int)) "next" (Some 2)
    (Option.bind (Fifo_queue.dequeue q) Value.to_int);
  ignore (Fifo_queue.dequeue q);
  check_bool "drained" true (Fifo_queue.dequeue q = None)

let test_fifo_commutativity () =
  let q = Fifo_queue.create () in
  let spec = Fifo_queue.spec q in
  let enq top = act ~top "enqueue" in
  let deq top = act ~top "dequeue" in
  check_bool "enq/deq conflict on empty queue" false
    (Commutativity.test spec (enq 1) (deq 2));
  Fifo_queue.enqueue q (Value.int 1);
  check_bool "enq/deq commute when non-empty" true
    (Commutativity.test spec (enq 1) (deq 2));
  check_bool "enq/enq never commute" false
    (Commutativity.test spec (enq 1) (enq 2));
  check_bool "deq/deq never commute" false
    (Commutativity.test spec (deq 1) (deq 2))

let test_directory () =
  let d = Directory.create () in
  Directory.bind d (Value.str "a") (Value.int 1);
  Directory.bind d (Value.str "a") (Value.int 2);
  check_int "rebind replaces" 1 (Directory.cardinal d);
  Alcotest.(check (option int)) "lookup" (Some 2)
    (Option.bind (Directory.lookup d (Value.str "a")) Value.to_int);
  Directory.unbind d (Value.str "a");
  check_bool "unbound" true (Directory.lookup d (Value.str "a") = None);
  let spec = Directory.spec in
  let bind k top = act ~top ~args:[ Value.str k ] "bind" in
  let lookup k top = act ~top ~args:[ Value.str k ] "lookup" in
  let list top = act ~top "list" in
  check_bool "different keys commute" true
    (Commutativity.test spec (bind "x" 1) (bind "y" 2));
  check_bool "same key bind/lookup conflict" false
    (Commutativity.test spec (bind "x" 1) (lookup "x" 2));
  check_bool "list conflicts with bind (phantom)" false
    (Commutativity.test spec (list 1) (bind "x" 2));
  check_bool "list commutes with lookup" true
    (Commutativity.test spec (list 1) (lookup "x" 2))

(* Property: escrow commutativity is sound — whenever the spec says two
   updates commute, applying them in either order succeeds and ends in
   the same state. *)
let prop_escrow_sound =
  let open QCheck2 in
  let gen =
    Gen.(
      tup4 (int_range 0 20) (* initial *)
        (int_range (-10) 10) (* delta a *)
        (int_range (-10) 10) (* delta b *)
        (int_range 10 30) (* high bound *))
  in
  QCheck2.Test.make ~name:"escrow commute implies order-insensitive success"
    ~count:500 gen (fun (init, da, db, high) ->
      let init = min init high in
      let mk () = Escrow_counter.create ~low:0 ~high init in
      let c = mk () in
      let spec = Escrow_counter.spec c in
      let act_of top d =
        act ~top
          ~args:[ Value.int (abs d) ]
          (if d >= 0 then "incr" else "decr")
      in
      let apply c d = if d >= 0 then Escrow_counter.incr c d else Escrow_counter.decr c (-d) in
      if Commutativity.test spec (act_of 1 da) (act_of 2 db) then (
        let c1 = mk () and c2 = mk () in
        let r1 =
          match
            apply c1 da;
            apply c1 db
          with
          | () -> Some (Escrow_counter.value c1)
          | exception Escrow_counter.Bounds_violation _ -> None
        in
        let r2 =
          match
            apply c2 db;
            apply c2 da
          with
          | () -> Some (Escrow_counter.value c2)
          | exception Escrow_counter.Bounds_violation _ -> None
        in
        r1 <> None && r1 = r2)
      else true)

let suites =
  [
    ( "adts",
      [
        Alcotest.test_case "escrow basics" `Quick test_escrow_basic;
        Alcotest.test_case "escrow commutativity" `Quick test_escrow_commutativity;
        Alcotest.test_case "kv set" `Quick test_kv_set;
        Alcotest.test_case "fifo queue" `Quick test_fifo_queue;
        Alcotest.test_case "fifo commutativity" `Quick test_fifo_commutativity;
        Alcotest.test_case "directory" `Quick test_directory;
        QCheck_alcotest.to_alcotest prop_escrow_sound;
      ] );
  ]
