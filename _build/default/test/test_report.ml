(* Tests for the explanation/report machinery: provenance of dependency
   edges and cycle explanations. *)

open Ooser_core
open Ooser_workload

let check_bool = Alcotest.(check bool)
let o = Obj_id.v
let aid top path = Ids.Action_id.v ~top ~path

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_provenance_sources () =
  let h = Paper_examples.example1_same_key () in
  let sched = Schedule.compute h in
  (* page level: Axiom 1 *)
  let page = Schedule.find_exn sched (o "Page4712") in
  check_bool "page edge is Axiom1" true
    (Action.Pair_map.find_opt
       (aid 3 [ 1; 1; 1; 1 ], aid 4 [ 1; 1; 1; 1 ])
       page.Schedule.act_src
    = Some Schedule.Axiom1);
  (* leaf level: inherited from the page *)
  let leaf = Schedule.find_exn sched (o "Leaf11") in
  check_bool "leaf edge inherited from page" true
    (Action.Pair_map.find_opt
       (aid 3 [ 1; 1; 1 ], aid 4 [ 1; 1; 1 ])
       leaf.Schedule.act_src
    = Some (Schedule.Inherited (o "Page4712")));
  (* the witness of the page-level txn dep is the page action pair *)
  check_bool "witness recorded" true
    (Action.Pair_map.find_opt
       (aid 3 [ 1; 1; 1 ], aid 4 [ 1; 1; 1 ])
       page.Schedule.txn_src
    = Some (aid 3 [ 1; 1; 1; 1 ], aid 4 [ 1; 1; 1; 1 ]))

let test_program_order_source () =
  let t =
    Call_tree.Build.(
      top ~n:1 [ call (o "A") "x" []; call (o "A") "y" [] ])
  in
  let h =
    History.of_serial ~tops:[ t ]
      ~commut:(Commutativity.uniform Commutativity.all_commute)
  in
  let sched = Schedule.compute h in
  let a = Schedule.find_exn sched (o "A") in
  check_bool "program order source" true
    (Action.Pair_map.find_opt (aid 1 [ 1 ], aid 1 [ 2 ]) a.Schedule.act_src
    = Some Schedule.Program_order)

let test_explain_accepted () =
  let h = Paper_examples.example1_different_keys () in
  let text = Report.explain h in
  check_bool "mentions serializable" true (contains text "oo-serializable: true");
  check_bool "mentions Page4712" true (contains text "Page4712")

let test_explain_rejected_lost_update () =
  (* the lost-update page interleaving: the explanation names the cycle
     and traces it to Axiom 1 *)
  let reg =
    Commutativity.fixed
      [ ("P", Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]);
        ("C", Commutativity.of_commute_matrix ~name:"c" [ ("incr", "incr") ]) ]
  in
  let tree n =
    Call_tree.Build.(
      top ~n [ call (o "C") "incr" [ call (o "P") "read" []; call (o "P") "write" [] ] ])
  in
  let order =
    [ aid 1 [ 1; 1 ]; aid 2 [ 1; 1 ]; aid 1 [ 1; 2 ]; aid 2 [ 1; 2 ] ]
  in
  let h = History.v ~tops:[ tree 1; tree 2 ] ~order ~commut:reg in
  let text = Report.explain h in
  check_bool "rejected" true (contains text "oo-serializable: false");
  check_bool "names the culprit object" true (contains text "NOT oo-serializable");
  check_bool "shows a cycle" true (contains text "cycle at");
  check_bool "traces to Axiom 1" true (contains text "Axiom 1")

let test_explain_inheritance_chain () =
  (* same-key Example 1: the top-level dependency explanation descends
     Enc -> BpTree -> Leaf11 -> Page4712 *)
  let h = Paper_examples.example1_same_key () in
  let sched = Schedule.compute h in
  let text =
    Fmt.str "%t" (fun ppf ->
        Fmt.pf ppf "@[<v>";
        Report.explain_edge sched (o "Enc")
          (aid 3 [ 1 ], aid 4 [ 1 ])
          ~depth:0 ppf;
        Fmt.pf ppf "@]")
  in
  check_bool "mentions BpTree" true (contains text "BpTree");
  check_bool "mentions Leaf11" true (contains text "Leaf11");
  check_bool "mentions Page4712" true (contains text "Page4712");
  check_bool "roots at Axiom 1" true (contains text "Axiom 1")

let suites =
  [
    ( "report",
      [
        Alcotest.test_case "provenance sources" `Quick test_provenance_sources;
        Alcotest.test_case "program order source" `Quick test_program_order_source;
        Alcotest.test_case "explain accepted history" `Quick test_explain_accepted;
        Alcotest.test_case "explain rejected history" `Quick
          test_explain_rejected_lost_update;
        Alcotest.test_case "inheritance chain explanation" `Quick
          test_explain_inheritance_chain;
      ] );
  ]
