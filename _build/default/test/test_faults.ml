(* Failure injection: abort storms, resource pressure, exhausted budgets,
   and Def. 12 equivalence sanity.  Whatever breaks mid-flight, the
   committed history must stay well-formed and oo-serializable, and the
   state must reflect exactly the committed transactions. *)

open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng
module Buffer_pool = Ooser_storage.Buffer_pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let open_protocol db = Protocol.open_nested ~reg:(Database.spec_registry db) ()

let test_abort_storm () =
  (* half the writers abort themselves after doing real work; the survivors
     and readers must see a consistent encyclopedia *)
  let db = Database.create () in
  let enc = Encyclopedia.create ~fanout:4 db in
  let writer i ctx =
    Encyclopedia.insert enc ctx
      ~key:(Printf.sprintf "k%02d" i)
      ~text:(Printf.sprintf "v%d" i);
    if i mod 2 = 0 then Runtime.abort "injected failure" else Value.unit
  in
  let config =
    let p = open_protocol db in
    {
      (Engine.default_config p) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:21);
    }
  in
  let out =
    Engine.run ~config db ~protocol:config.Engine.protocol
      (List.init 8 (fun i -> (i + 1, Printf.sprintf "w%d" (i + 1), writer (i + 1))))
  in
  check_int "half committed" 4 (List.length out.Engine.committed);
  check_int "half aborted" 4 (List.length out.Engine.aborted);
  check_bool "history valid" true (History.validate out.Engine.history = Ok ());
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history);
  (* the structure contains exactly the odd writers' items *)
  let s = Encyclopedia.structure enc in
  check_int "only committed inserts remain" 4 s.Encyclopedia.keys;
  let reader ctx =
    check_int "readSeq agrees" 4 (List.length (Encyclopedia.read_seq enc ctx));
    List.iter
      (fun i ->
        let expect = if i mod 2 = 1 then Some (Printf.sprintf "v%d" i) else None in
        check_bool
          (Printf.sprintf "key k%02d" i)
          true
          (Encyclopedia.search enc ctx ~key:(Printf.sprintf "k%02d" i) = expect))
      (List.init 8 (fun i -> i + 1));
    Value.unit
  in
  let out2 = Engine.run db ~protocol:(open_protocol db) [ (99, "check", reader) ] in
  Alcotest.(check (list int)) "reader ok" [ 99 ] out2.Engine.committed

let test_buffer_pool_pressure () =
  (* a pool of 3 frames under 3 concurrent writers: heavy eviction, same
     results *)
  let db = Database.create () in
  let enc = Encyclopedia.create ~fanout:4 ~pool_capacity:3 db in
  let writer lo ctx =
    for i = lo to lo + 7 do
      Encyclopedia.insert enc ctx ~key:(Printf.sprintf "k%03d" i) ~text:"x"
    done;
    Value.unit
  in
  let config =
    let p = open_protocol db in
    {
      (Engine.default_config p) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:8);
    }
  in
  let out =
    Engine.run ~config db ~protocol:config.Engine.protocol
      [ (1, "w1", writer 0); (2, "w2", writer 100); (3, "w3", writer 200) ]
  in
  check_int "all committed" 3 (List.length out.Engine.committed);
  check_bool "evictions happened" true
    (Buffer_pool.evictions (Encyclopedia.pool enc) > 0);
  check_int "all keys present" 24 (Encyclopedia.structure enc).Encyclopedia.keys;
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_step_budget_exhaustion () =
  let db = Database.create () in
  let enc = Encyclopedia.create db in
  let writer ctx =
    for i = 0 to 50 do
      Encyclopedia.insert enc ctx ~key:(Printf.sprintf "k%03d" i) ~text:"x"
    done;
    Value.unit
  in
  let p = open_protocol db in
  let config = { (Engine.default_config p) with Engine.max_steps = 40 } in
  let out = Engine.run ~config db ~protocol:p [ (1, "w", writer) ] in
  check_int "aborted on budget" 1 (List.length out.Engine.aborted);
  check_bool "reason" true
    (match out.Engine.aborted with
    | [ (1, reason) ] -> reason = "step budget"
    | _ -> false);
  (* everything undone *)
  check_int "no keys" 0 (Encyclopedia.structure enc).Encyclopedia.keys

let test_restart_budget_exhaustion () =
  (* two transactions in a guaranteed lock-upgrade deadlock with zero
     restarts allowed: at least one aborts permanently; state consistent *)
  let db = Database.create () in
  let state = ref 0 in
  let read _ _ = Value.int !state in
  let write ctx args =
    match args with
    | [ Value.Int v ] ->
        let old = !state in
        Runtime.on_undo ctx (fun () -> state := old);
        state := v;
        Value.unit
    | _ -> invalid_arg "write"
  in
  Database.register db (Obj_id.v "R")
    ~spec:(Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ])
    [ ("read", Database.primitive read); ("write", Database.primitive write) ];
  let body ctx =
    let v = Value.to_int_exn (Runtime.call ctx (Obj_id.v "R") "read" []) in
    ignore (Runtime.call ctx (Obj_id.v "R") "write" [ Value.int (v + 1) ]);
    Value.unit
  in
  let p = Protocol.flat_2pl ~reg:(Database.spec_registry db) () in
  let config = { (Engine.default_config p) with Engine.max_restarts = 0 } in
  let out = Engine.run ~config db ~protocol:p [ (1, "a", body); (2, "b", body) ] in
  check_int "state equals committed increments"
    (List.length out.Engine.committed)
    !state;
  check_bool "committed history serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_equivalence_def12 () =
  (* two different interleavings with the same dependencies are equivalent
     (Def. 12); a conflicting reordering is not *)
  let h_serial = Paper_examples.example4_serial () in
  let s1 = Schedule.compute h_serial in
  let s1' = Schedule.compute h_serial in
  check_bool "reflexive" true (Schedule.equivalent s1 s1');
  (* the crossing interleaving of T1/T3 has different participants, so
     compare like with like: reorder only commuting page accesses *)
  let t1, t2, t3, t4 = Paper_examples.example4_trees () in
  let tops = [ t1; t2; t3; t4 ] in
  let order = List.concat_map History.serial_primitives tops in
  let h2 =
    History.v ~tops ~order ~commut:Paper_examples.registry
  in
  check_bool "same order, equivalent" true
    (Schedule.equivalent s1 (Schedule.compute h2));
  (* run T2 before T1: the same-key dependency flips direction *)
  let reordered =
    List.concat_map History.serial_primitives [ t2; t1; t3; t4 ]
  in
  let h3 = History.v ~tops ~order:reordered ~commut:Paper_examples.registry in
  check_bool "reordered conflict, NOT equivalent" false
    (Schedule.equivalent s1 (Schedule.compute h3))

let test_parallel_layout () =
  let db = Database.create () in
  let doc = Document.create ~sections:6 ~sections_per_page:3 db in
  let layouter ctx = Value.int (List.length (Document.layout_par doc ctx)) in
  let editor ctx =
    Document.edit doc ctx ~section:4 ~text:"edited";
    Value.unit
  in
  let config =
    let p = open_protocol db in
    {
      (Engine.default_config p) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:12);
    }
  in
  let out =
    Engine.run ~config db ~protocol:config.Engine.protocol
      [ (1, "layout", layouter); (2, "edit", editor) ]
  in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_bool "layout read all sections" true
    (List.assoc 1 out.Engine.results = Value.int 6);
  check_bool "history valid" true (History.validate out.Engine.history = Ok ());
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

(* Property: mixed workload with injected aborts and concurrent splits
   over many seeds — the committed state must always equal the committed
   transactions' inserts, and the history must check out. *)
let prop_abort_storm_seeds =
  QCheck2.Test.make ~name:"abort storms leave exactly the committed state"
    ~count:25
    (QCheck2.Gen.int_range 1 10_000)
    (fun seed ->
      let db = Database.create () in
      let enc = Encyclopedia.create ~fanout:2 db in
      let rng = Rng.create ~seed in
      let dooms = Array.init 6 (fun _ -> Rng.bool rng) in
      let writer i ctx =
        Encyclopedia.insert enc ctx
          ~key:(Printf.sprintf "k%02d" i)
          ~text:(Printf.sprintf "v%d" i);
        Encyclopedia.insert enc ctx
          ~key:(Printf.sprintf "m%02d" i)
          ~text:(Printf.sprintf "w%d" i);
        if dooms.(i - 1) then Runtime.abort "doomed" else Value.unit
      in
      let config =
        let p = open_protocol db in
        {
          (Engine.default_config p) with
          Engine.strategy = Engine.Random_pick (Rng.create ~seed:(seed * 31));
        }
      in
      let out =
        Engine.run ~config db ~protocol:config.Engine.protocol
          (List.init 6 (fun i -> (i + 1, Printf.sprintf "w%d" (i + 1), writer (i + 1))))
      in
      let committed = out.Engine.committed in
      let expected_keys = 2 * List.length committed in
      History.validate out.Engine.history = Ok ()
      && Serializability.oo_serializable out.Engine.history
      && (Encyclopedia.structure enc).Encyclopedia.keys = expected_keys)

let suites =
  [
    ( "faults",
      [
        Alcotest.test_case "abort storm" `Quick test_abort_storm;
        Alcotest.test_case "buffer pool pressure" `Quick
          test_buffer_pool_pressure;
        Alcotest.test_case "step budget exhaustion" `Quick
          test_step_budget_exhaustion;
        Alcotest.test_case "restart budget exhaustion" `Quick
          test_restart_budget_exhaustion;
        Alcotest.test_case "Def. 12 equivalence" `Quick test_equivalence_def12;
        Alcotest.test_case "parallel layout under edits" `Quick
          test_parallel_layout;
        QCheck_alcotest.to_alcotest prop_abort_storm_seeds;
      ] );
  ]
