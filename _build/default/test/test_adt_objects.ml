(* Tests for the ADT database objects: transactional behaviour (undo on
   abort), semantic concurrency (escrow and queue commutativity through
   the protocols), and correctness of results. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng
module Escrow = Ooser_adts.Escrow_counter
module Fifo_queue = Ooser_adts.Fifo_queue
module Kv_set = Ooser_adts.Kv_set
module Directory = Ooser_adts.Directory

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let o = Obj_id.v

let open_protocol db = Protocol.open_nested ~reg:(Database.spec_registry db) ()

let test_counter_concurrent_escrow () =
  let db = Database.create () in
  let c = Adt_objects.register_counter db (o "C") ~low:0 ~high:1000 100 in
  let body delta ctx =
    ignore
      (Runtime.call ctx (o "C")
         (if delta >= 0 then "incr" else "decr")
         [ Value.int (abs delta) ]);
    Value.unit
  in
  let out =
    Engine.run db ~protocol:(open_protocol db)
      [ (1, "d1", body 10); (2, "d2", body (-5)); (3, "d3", body 7) ]
  in
  check_int "all committed" 3 (List.length out.Engine.committed);
  check_int "value" 112 (Escrow.value c);
  (* escrow: small updates commute, no waits at all *)
  check_bool "no waits" true
    (not (List.mem_assoc "waits" out.Engine.metrics));
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_counter_abort_undo () =
  let db = Database.create () in
  let c = Adt_objects.register_counter db (o "C") ~low:0 ~high:1000 50 in
  let body ctx =
    ignore (Runtime.call ctx (o "C") "incr" [ Value.int 10 ]);
    Runtime.abort "nope"
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (1, "t", body) ] in
  check_int "aborted" 1 (List.length out.Engine.aborted);
  check_int "restored" 50 (Escrow.value c)

let test_counter_bounds_abort () =
  let db = Database.create () in
  let c = Adt_objects.register_counter db (o "C") ~low:0 ~high:20 10 in
  let body ctx =
    ignore (Runtime.call ctx (o "C") "incr" [ Value.int 5 ]);
    ignore (Runtime.call ctx (o "C") "incr" [ Value.int 50 ]);
    (* bound violation *)
    Value.unit
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (1, "t", body) ] in
  check_int "aborted on bound" 1 (List.length out.Engine.aborted);
  check_int "first incr undone too" 10 (Escrow.value c)

let test_set_operations () =
  let db = Database.create () in
  let s = Adt_objects.register_set db (o "S1") in
  let body ctx =
    ignore (Runtime.call ctx (o "S1") "insert" [ Value.str "a" ]);
    ignore (Runtime.call ctx (o "S1") "insert" [ Value.str "b" ]);
    ignore (Runtime.call ctx (o "S1") "remove" [ Value.str "a" ]);
    Runtime.call ctx (o "S1") "contains" [ Value.str "b" ]
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (1, "t", body) ] in
  check_bool "result" true (List.assoc 1 out.Engine.results = Value.bool true);
  check_int "final cardinality" 1 (Kv_set.cardinal s)

let test_set_keyed_concurrency () =
  let db = Database.create () in
  ignore (Adt_objects.register_set db (o "S1"));
  let body k ctx =
    ignore (Runtime.call ctx (o "S1") "insert" [ Value.str k ]);
    Value.unit
  in
  let out =
    Engine.run db ~protocol:(open_protocol db)
      [ (1, "ka", body "a"); (2, "kb", body "b"); (3, "kc", body "c") ]
  in
  check_int "all committed" 3 (List.length out.Engine.committed);
  check_bool "different keys never wait" true
    (not (List.mem_assoc "waits" out.Engine.metrics))

let test_queue_fifo_through_engine () =
  let db = Database.create () in
  let q = Adt_objects.register_queue db (o "Q") in
  let producer ctx =
    List.iter
      (fun i -> ignore (Runtime.call ctx (o "Q") "enqueue" [ Value.int i ]))
      [ 1; 2; 3 ];
    Value.unit
  in
  ignore (Engine.run db ~protocol:(open_protocol db) [ (1, "prod", producer) ]);
  let consumer ctx = Runtime.call ctx (o "Q") "dequeue" [] in
  let out = Engine.run db ~protocol:(open_protocol db) [ (2, "cons", consumer) ] in
  check_bool "fifo head" true
    (List.assoc 2 out.Engine.results = Value.pair (Value.str "some") (Value.int 1));
  check_int "two left" 2 (Fifo_queue.length q)

let test_queue_abort_restores () =
  let db = Database.create () in
  let q = Adt_objects.register_queue db (o "Q") in
  let setup ctx =
    ignore (Runtime.call ctx (o "Q") "enqueue" [ Value.int 1 ]);
    ignore (Runtime.call ctx (o "Q") "enqueue" [ Value.int 2 ]);
    Value.unit
  in
  ignore (Engine.run db ~protocol:(open_protocol db) [ (1, "s", setup) ]);
  let doomed ctx =
    ignore (Runtime.call ctx (o "Q") "dequeue" []);
    ignore (Runtime.call ctx (o "Q") "enqueue" [ Value.int 99 ]);
    Runtime.abort "rollback"
  in
  ignore (Engine.run db ~protocol:(open_protocol db) [ (2, "d", doomed) ]);
  check_int "length restored" 2 (Fifo_queue.length q);
  check_bool "head restored" true (Fifo_queue.peek q = Some (Value.int 1))

let test_directory_phantoms () =
  let db = Database.create () in
  ignore (Adt_objects.register_directory db (o "D"));
  let binder ctx =
    ignore
      (Runtime.call ctx (o "D") "bind" [ Value.str "k"; Value.int 1 ]);
    Value.unit
  in
  let lister ctx =
    ignore (Runtime.call ctx (o "D") "list" []);
    Value.unit
  in
  let out =
    Engine.run db ~protocol:(open_protocol db)
      [ (1, "bind", binder); (2, "list", lister) ]
  in
  check_int "both committed" 2 (List.length out.Engine.committed);
  (* list conflicts with bind: a top-level dependency exists *)
  check_bool "phantom dependency" true
    (Baselines.conflict_pairs out.Engine.history `Oo > 0);
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_directory_lookup_results () =
  let db = Database.create () in
  ignore (Adt_objects.register_directory db (o "D"));
  let body ctx =
    ignore (Runtime.call ctx (o "D") "bind" [ Value.str "x"; Value.int 42 ]);
    ignore (Runtime.call ctx (o "D") "bind" [ Value.str "x"; Value.int 43 ]);
    Runtime.call ctx (o "D") "lookup" [ Value.str "x" ]
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (1, "t", body) ] in
  check_bool "rebind wins" true
    (List.assoc 1 out.Engine.results
    = Value.pair (Value.str "some") (Value.int 43))

let test_set_compensations_commute () =
  (* the classical open-nesting pitfall: T1 inserts v and will abort; T2
     inserts the SAME v between T1's insert and T1's abort (the two
     inserts commute, so nothing blocks T2).  T1's compensation must NOT
     erase T2's element — the counted representation guarantees it. *)
  let db = Database.create () in
  let s = Adt_objects.register_set db (o "S1") in
  (* T1 inserts then stalls long enough for T2 to run, then aborts *)
  let t1 ctx =
    ignore (Runtime.call ctx (o "S1") "insert" [ Value.str "v" ]);
    (* busywork so the abort happens after T2's insert under the script *)
    ignore (Runtime.call ctx (o "S1") "cardinal" []);
    ignore (Runtime.call ctx (o "S1") "cardinal" []);
    Runtime.abort "t1 gives up"
  in
  let t2 ctx =
    ignore (Runtime.call ctx (o "S1") "insert" [ Value.str "v" ]);
    Value.unit
  in
  (* script: T1 inserts, T2 runs to completion, T1 aborts *)
  let protocol = open_protocol db in
  let script = ref (List.init 6 (fun _ -> 1) @ List.init 10 (fun _ -> 2)
                    @ List.init 20 (fun _ -> 1)) in
  let config =
    { (Engine.default_config protocol) with Engine.strategy = Engine.Scripted script }
  in
  let out = Engine.run ~config db ~protocol [ (1, "t1", t1); (2, "t2", t2) ] in
  check_bool "t2 committed" true (List.mem 2 out.Engine.committed);
  check_bool "t1 aborted" true (List.mem_assoc 1 out.Engine.aborted);
  (* T2's insert must survive T1's compensation *)
  check_bool "element survives" true (Kv_set.mem s (Value.str "v"));
  check_int "exactly one insertion left" 1 (Kv_set.count s (Value.str "v"))

let test_queue_compensations_commute () =
  (* same pitfall for the queue: T1 enqueues x and aborts after T2
     enqueued the identical value; exactly one x must remain *)
  let db = Database.create () in
  let q = Adt_objects.register_queue db (o "Q") in
  let t1 ctx =
    ignore (Runtime.call ctx (o "Q") "enqueue" [ Value.str "x" ]);
    ignore (Runtime.call ctx (o "Q") "length" []);
    ignore (Runtime.call ctx (o "Q") "length" []);
    Runtime.abort "t1 gives up"
  in
  let t2 ctx =
    ignore (Runtime.call ctx (o "Q") "enqueue" [ Value.str "x" ]);
    Value.unit
  in
  let protocol = open_protocol db in
  let script = ref (List.init 6 (fun _ -> 1) @ List.init 10 (fun _ -> 2)
                    @ List.init 20 (fun _ -> 1)) in
  let config =
    { (Engine.default_config protocol) with Engine.strategy = Engine.Scripted script }
  in
  let out = Engine.run ~config db ~protocol [ (1, "t1", t1); (2, "t2", t2) ] in
  check_bool "t2 committed" true (List.mem 2 out.Engine.committed);
  check_int "exactly one x left" 1 (Fifo_queue.length q)

let suites =
  [
    ( "adt_objects",
      [
        Alcotest.test_case "escrow counter concurrency" `Quick
          test_counter_concurrent_escrow;
        Alcotest.test_case "counter abort undo" `Quick test_counter_abort_undo;
        Alcotest.test_case "counter bound violation aborts" `Quick
          test_counter_bounds_abort;
        Alcotest.test_case "set operations" `Quick test_set_operations;
        Alcotest.test_case "set keyed concurrency" `Quick
          test_set_keyed_concurrency;
        Alcotest.test_case "queue fifo order" `Quick test_queue_fifo_through_engine;
        Alcotest.test_case "queue abort restores" `Quick test_queue_abort_restores;
        Alcotest.test_case "directory phantoms" `Quick test_directory_phantoms;
        Alcotest.test_case "directory lookup" `Quick test_directory_lookup_results;
        Alcotest.test_case "set compensations commute" `Quick
          test_set_compensations_commute;
        Alcotest.test_case "queue compensations commute" `Quick
          test_queue_compensations_commute;
      ] );
  ]
