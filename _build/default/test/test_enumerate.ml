(* Exhaustive-enumeration tests: exact interleaving counts, exact
   acceptance ratios for the paper's Example 1, and the inclusion
   theorems verified over FULL enumerations of small random systems. *)

open Ooser_core
open Ooser_workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let o = Obj_id.v

let test_multinomial () =
  check_int "2+2" 6 (Enumerate.multinomial [ 2; 2 ]);
  check_int "4+4" 70 (Enumerate.multinomial [ 4; 4 ]);
  check_int "2+2+2" 90 (Enumerate.multinomial [ 2; 2; 2 ]);
  check_int "singleton" 1 (Enumerate.multinomial [ 5 ]);
  check_int "empty" 1 (Enumerate.multinomial [])

let test_enumeration_count_matches () =
  let tree n =
    Call_tree.Build.(
      top ~n [ call (o "M") "m" [ call (o "P") "w" []; call (o "P") "w" [] ] ])
  in
  let tops = [ tree 1; tree 2 ] in
  check_int "count formula" 6 (Enumerate.count_interleavings ~granularity:`Subtransaction tops
                               |> fun _ -> Enumerate.count_interleavings tops);
  let listed = List.of_seq (Enumerate.interleavings tops) in
  check_int "enumerated = C(4,2)" 6 (List.length listed);
  (* all distinct, all respect program order *)
  check_int "distinct" 6 (List.length (List.sort_uniq compare listed));
  List.iter
    (fun order ->
      let h = History.v ~tops ~order ~commut:(Commutativity.uniform Commutativity.all_commute) in
      check_bool "valid order" true (History.validate h = Ok ()))
    listed;
  (* subtransaction granularity: each call is atomic -> 2 interleavings *)
  check_int "atomic count" 2
    (List.length
       (List.of_seq (Enumerate.interleavings ~granularity:`Subtransaction tops)))

let test_example1_exact_acceptance () =
  (* the paper's Example 1 (different keys), exhaustively: EVERY
     subtransaction-atomic interleaving is oo-serializable (inserts
     commute at the leaf), while conventionally only the serial ones
     pass *)
  let t1 = Paper_examples.insert_txn 1 "DBMS" in
  let t2 = Paper_examples.insert_txn 2 "DBS" in
  let e =
    Enumerate.exact_acceptance ~granularity:`Subtransaction
      ~commut:Paper_examples.registry [ t1; t2 ]
  in
  check_int "two atomic interleavings" 2 e.Enumerate.total;
  check_int "oo accepts all" 2 e.Enumerate.oo;
  check_bool "inclusions" true e.Enumerate.inclusions_hold;
  (* at primitive granularity oo accepts exactly the interleavings whose
     page-level subtransactions are serializable *)
  let e' =
    Enumerate.exact_acceptance ~commut:Paper_examples.registry [ t1; t2 ]
  in
  check_int "C(4,2) interleavings" 6 e'.Enumerate.total;
  check_bool "oo superset of conventional (exact)" true
    (e'.Enumerate.oo >= e'.Enumerate.conventional);
  check_bool "inclusions hold exhaustively" true e'.Enumerate.inclusions_hold

let test_same_key_exact () =
  (* same-key insert vs search: the conflict reaches the top, so oo and
     conventional agree exactly on this pair *)
  let t3 = Paper_examples.insert_txn 3 "DBS" in
  let t4 = Paper_examples.search_txn 4 "DBS" in
  let e =
    Enumerate.exact_acceptance ~commut:Paper_examples.registry [ t3; t4 ]
  in
  check_bool "inclusions" true e.Enumerate.inclusions_hold;
  check_bool "oo >= conventional" true (e.Enumerate.oo >= e.Enumerate.conventional);
  check_bool "some rejected" true (e.Enumerate.oo < e.Enumerate.total)

let test_inclusions_exhaustive_random () =
  (* full enumerations of small random systems: the inclusion chain holds
     on every single interleaving, not just sampled ones *)
  let ok = ref true in
  for seed = 1 to 12 do
    let p =
      {
        Random_schedules.default_params with
        Random_schedules.n_txns = 2;
        calls_per_txn = 2;
        prims_per_call = 2;
        p_commute = 0.5;
      }
    in
    let tops, commut = Random_schedules.system ~seed p in
    let e = Enumerate.exact_acceptance ~commut tops in
    if not e.Enumerate.inclusions_hold then ok := false;
    if e.Enumerate.total <> 70 then ok := false
  done;
  check_bool "inclusions on 12 x 70 interleavings" true !ok

let test_sampling_agrees_with_exact () =
  (* the Random_schedules sampler, run long enough, lands near the exact
     ratio *)
  let p =
    {
      Random_schedules.default_params with
      Random_schedules.n_txns = 2;
      calls_per_txn = 2;
      prims_per_call = 2;
      p_commute = 0.6;
    }
  in
  let tops, commut = Random_schedules.system ~seed:3 p in
  let e = Enumerate.exact_acceptance ~commut tops in
  let a = Random_schedules.acceptance ~seed:3 ~samples:400 p in
  let exact_rate = float_of_int e.Enumerate.oo /. float_of_int e.Enumerate.total in
  let sampled_rate =
    float_of_int a.Random_schedules.oo_accepted /. 400.0
  in
  check_bool
    (Printf.sprintf "sampled %.2f within 0.15 of exact %.2f" sampled_rate
       exact_rate)
    true
    (abs_float (sampled_rate -. exact_rate) < 0.15)

let test_cap_enforced () =
  let tree n =
    Call_tree.Build.(
      top ~n (List.init 10 (fun _ -> call (o "P") "w" [])))
  in
  check_bool "cap" true
    (match
       Enumerate.exact_acceptance ~max_interleavings:100
         ~commut:(Commutativity.uniform Commutativity.all_commute)
         [ tree 1; tree 2 ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suites =
  [
    ( "enumerate",
      [
        Alcotest.test_case "multinomial" `Quick test_multinomial;
        Alcotest.test_case "enumeration count" `Quick
          test_enumeration_count_matches;
        Alcotest.test_case "Example 1 exact acceptance" `Quick
          test_example1_exact_acceptance;
        Alcotest.test_case "same-key exact" `Quick test_same_key_exact;
        Alcotest.test_case "inclusions hold exhaustively" `Quick
          test_inclusions_exhaustive_random;
        Alcotest.test_case "sampling agrees with exact" `Quick
          test_sampling_agrees_with_exact;
        Alcotest.test_case "interleaving cap" `Quick test_cap_enforced;
      ] );
  ]
