(* Unit and property tests for pages, disk and buffer pool. *)

open Ooser_storage

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_page_basic () =
  let p = Page.create ~size:256 () in
  check_int "empty count" 0 (Page.record_count p);
  let s0 = Option.get (Page.insert p "hello") in
  let s1 = Option.get (Page.insert p "world") in
  check_bool "distinct slots" true (s0 <> s1);
  Alcotest.(check (option string)) "get" (Some "hello") (Page.get p s0);
  check_bool "update same size" true (Page.update p s0 "HELLO");
  Alcotest.(check (option string)) "updated" (Some "HELLO") (Page.get p s0);
  check_bool "update different size" true (Page.update p s0 "longer-record");
  Alcotest.(check (option string)) "resized" (Some "longer-record") (Page.get p s0);
  check_bool "delete" true (Page.delete p s1);
  check_bool "double delete" false (Page.delete p s1);
  Alcotest.(check (option string)) "dead slot" None (Page.get p s1);
  check_int "count after delete" 1 (Page.record_count p)

let test_page_slot_reuse () =
  let p = Page.create ~size:256 () in
  let s0 = Option.get (Page.insert p "aaa") in
  ignore (Option.get (Page.insert p "bbb"));
  check_bool "del" true (Page.delete p s0);
  let s2 = Option.get (Page.insert p "ccc") in
  check_int "dead slot reused" s0 s2;
  check_int "directory did not grow" 2 (Page.num_slots p)

let test_page_full_and_compaction () =
  let p = Page.create ~size:128 () in
  (* fill it up *)
  let rec fill acc =
    match Page.insert p (String.make 10 'x') with
    | Some s -> fill (s :: acc)
    | None -> acc
  in
  let slots = fill [] in
  check_bool "filled some" true (List.length slots > 3);
  check_bool "rejects when full" true (Page.insert p (String.make 50 'y') = None);
  (* delete every other record; the freed space is fragmented *)
  List.iteri (fun i s -> if i mod 2 = 0 then ignore (Page.delete p s)) slots;
  (* a larger record than any single hole must still fit via compaction *)
  let freed = Page.free_space p in
  check_bool "has free space" true (freed >= 20);
  check_bool "insert after compaction" true (Page.insert p (String.make 20 'z') <> None)

let test_page_kind_roundtrip () =
  let p = Page.create ~size:128 () in
  Page.set_kind p 7;
  check_int "kind" 7 (Page.kind p);
  ignore (Page.insert p "data");
  check_int "kind survives inserts" 7 (Page.kind p)

let test_disk () =
  let d = Disk.create ~page_size:128 () in
  let p0 = Disk.alloc d in
  let p1 = Disk.alloc d in
  check_int "ids sequential" (p0 + 1) p1;
  let img = Bytes.make 128 'a' in
  Disk.write d p0 img;
  Bytes.set img 0 'b';
  (* the disk stores a private copy *)
  check_bool "write copied" true (Bytes.get (Disk.read d p0) 0 = 'a');
  check_bool "bad id" true
    (match Disk.read d 99 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "bad size" true
    (match Disk.write d p0 (Bytes.make 4 'x') with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* only the successful read counts; the out-of-range one raised first *)
  check_int "io counted" 1 (Disk.reads d)

let test_buffer_pool_pin_eviction () =
  let d = Disk.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:2 d in
  let p0 = Buffer_pool.alloc pool in
  let p1 = Buffer_pool.alloc pool in
  let p2 = Buffer_pool.alloc pool in
  (* write through p0 *)
  let pg = Buffer_pool.pin pool p0 in
  ignore (Page.insert pg "zero");
  Buffer_pool.unpin ~dirty:true pool p0;
  (* touch p1 and p2 to evict p0 (capacity 2) *)
  ignore (Buffer_pool.pin pool p1);
  Buffer_pool.unpin pool p1;
  ignore (Buffer_pool.pin pool p2);
  Buffer_pool.unpin pool p2;
  check_bool "evictions happened" true (Buffer_pool.evictions pool > 0);
  (* p0 must come back from disk with its record *)
  let pg = Buffer_pool.pin pool p0 in
  Alcotest.(check (option string)) "durable through eviction" (Some "zero")
    (Page.get pg 0);
  Buffer_pool.unpin pool p0

let test_buffer_pool_pool_full () =
  let d = Disk.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:1 d in
  let p0 = Buffer_pool.alloc pool in
  let p1 = Buffer_pool.alloc pool in
  ignore (Buffer_pool.pin pool p0);
  check_bool "pool full raises" true
    (match Buffer_pool.pin pool p1 with
    | exception Buffer_pool.Pool_full -> true
    | _ -> false);
  Buffer_pool.unpin pool p0

let test_with_page_exception_safety () =
  let d = Disk.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:2 d in
  let p0 = Buffer_pool.alloc pool in
  (match Buffer_pool.with_page pool p0 ~f:(fun _ -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected exception");
  (* page must be unpinned: pinning to capacity works *)
  ignore (Buffer_pool.pin pool p0);
  Buffer_pool.unpin pool p0

(* Property: a page behaves like a slot map. *)
let prop_page_model =
  let open QCheck2 in
  let gen_ops =
    Gen.(
      list_size (int_bound 60)
        (oneof
           [
             map (fun n -> `Insert (String.make (1 + (n mod 12)) 'r')) (int_bound 100);
             map (fun s -> `Delete s) (int_bound 10);
             map (fun (s, n) -> `Update (s, String.make (1 + (n mod 12)) 'u'))
               (pair (int_bound 10) (int_bound 100));
           ]))
  in
  QCheck2.Test.make ~name:"page behaves like a slot map" ~count:200 gen_ops
    (fun ops ->
      let p = Page.create ~size:512 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun op ->
          match op with
          | `Insert r -> (
              match Page.insert p r with
              | Some s -> Hashtbl.replace model s r
              | None -> ())
          | `Delete s ->
              let deleted = Page.delete p s in
              if deleted then Hashtbl.remove model s
              else assert (not (Hashtbl.mem model s))
          | `Update (s, r) ->
              let updated = Page.update p s r in
              if updated then Hashtbl.replace model s r)
        ops;
      Hashtbl.fold
        (fun s r ok -> ok && Page.get p s = Some r)
        model true
      && Page.record_count p = Hashtbl.length model)

let suites =
  [
    ( "storage",
      [
        Alcotest.test_case "page basics" `Quick test_page_basic;
        Alcotest.test_case "slot reuse" `Quick test_page_slot_reuse;
        Alcotest.test_case "page full and compaction" `Quick
          test_page_full_and_compaction;
        Alcotest.test_case "page kind" `Quick test_page_kind_roundtrip;
        Alcotest.test_case "disk volume" `Quick test_disk;
        Alcotest.test_case "buffer pool pin/evict" `Quick
          test_buffer_pool_pin_eviction;
        Alcotest.test_case "buffer pool full" `Quick test_buffer_pool_pool_full;
        Alcotest.test_case "with_page exception safety" `Quick
          test_with_page_exception_safety;
        QCheck_alcotest.to_alcotest prop_page_model;
      ] );
  ]
