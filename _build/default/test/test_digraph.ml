(* Unit and property tests for the digraph/relation module. *)

open Ooser_core

module G = Digraph.Make (struct
  type t = int

  let compare = Int.compare
  let pp = Fmt.int
end)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let g_of = G.of_edges

let test_basic () =
  let g = g_of [ (1, 2); (2, 3) ] in
  check_bool "mem" true (G.mem 1 2 g);
  check_bool "not mem" false (G.mem 2 1 g);
  check_int "cardinal" 2 (G.cardinal g);
  check_int "vertices" 3 (G.nb_vertices g);
  Alcotest.(check (list int)) "succ" [ 2 ] (G.succ 1 g);
  Alcotest.(check (list int)) "pred" [ 2 ] (G.pred 3 g);
  check_bool "add idempotent" true (G.equal g (G.add 1 2 g))

let test_acyclic () =
  check_bool "empty acyclic" true (G.is_acyclic G.empty);
  check_bool "chain acyclic" true (G.is_acyclic (g_of [ (1, 2); (2, 3); (1, 3) ]));
  check_bool "self-loop cyclic" false (G.is_acyclic (g_of [ (1, 1) ]));
  check_bool "2-cycle" false (G.is_acyclic (g_of [ (1, 2); (2, 1) ]));
  check_bool "longer cycle" false
    (G.is_acyclic (g_of [ (1, 2); (2, 3); (3, 4); (4, 2) ]))

let test_find_cycle () =
  let g = g_of [ (1, 2); (2, 3); (3, 1); (3, 4) ] in
  (match G.find_cycle g with
  | None -> Alcotest.fail "expected a cycle"
  | Some c ->
      check_bool "cycle closes" true
        (let arr = Array.of_list c in
         let n = Array.length arr in
         n > 0
         && G.mem arr.(n - 1) arr.(0) g
         && Array.to_list (Array.init (n - 1) (fun i -> G.mem arr.(i) arr.(i + 1) g))
            |> List.for_all Fun.id));
  check_bool "acyclic gives none" true (G.find_cycle (g_of [ (5, 6) ]) = None)

let test_topo () =
  let g = g_of [ (1, 2); (1, 3); (3, 4); (2, 4) ] in
  (match G.topo_sort g with
  | None -> Alcotest.fail "expected a topological order"
  | Some order ->
      let posn = List.mapi (fun i v -> (v, i)) order in
      let pos v = List.assoc v posn in
      G.iter_edges (fun u v -> check_bool "edge respected" true (pos u < pos v)) g);
  check_bool "cyclic has no topo" true (G.topo_sort (g_of [ (1, 2); (2, 1) ]) = None)

let test_closure () =
  let g = g_of [ (1, 2); (2, 3) ] in
  let c = G.transitive_closure g in
  check_bool "closure adds 1->3" true (G.mem 1 3 c);
  check_bool "closure idempotent" true
    (G.equal c (G.transitive_closure c))

let test_restrict_union () =
  let g = g_of [ (1, 2); (2, 3); (3, 4) ] in
  let r = G.restrict (fun v -> v <= 3) g in
  check_int "restricted edges" 2 (G.cardinal r);
  let u = G.union r (g_of [ (9, 10) ]) in
  check_bool "union has both" true (G.mem 1 2 u && G.mem 9 10 u);
  check_bool "subset" true (G.subset r g);
  check_bool "not subset" false (G.subset u g)

let test_remove_vertex () =
  let g = g_of [ (1, 2); (2, 3); (3, 1) ] in
  let g' = G.remove_vertex 2 g in
  check_bool "edges gone" true ((not (G.mem 1 2 g')) && not (G.mem 2 3 g'));
  check_bool "other edge kept" true (G.mem 3 1 g');
  check_bool "now acyclic" true (G.is_acyclic g')

let test_reachable () =
  let g = g_of [ (1, 2); (2, 3); (4, 1) ] in
  Alcotest.(check (list int)) "reach from 1" [ 2; 3 ] (G.reachable 1 g);
  Alcotest.(check (list int)) "reach from 3" [] (G.reachable 3 g)

(* Property tests *)

let arb_edges =
  QCheck2.Gen.(list_size (int_bound 40) (pair (int_bound 12) (int_bound 12)))

let prop_topo_iff_acyclic =
  QCheck2.Test.make ~name:"topo_sort succeeds iff acyclic" ~count:200 arb_edges
    (fun edges ->
      let g = g_of edges in
      (G.topo_sort g <> None) = G.is_acyclic g)

let prop_cycle_is_real =
  QCheck2.Test.make ~name:"find_cycle returns a closed walk" ~count:200
    arb_edges (fun edges ->
      let g = g_of edges in
      match G.find_cycle g with
      | None -> G.is_acyclic g
      | Some c ->
          let arr = Array.of_list c in
          let n = Array.length arr in
          n > 0
          && G.mem arr.(n - 1) arr.(0) g
          && List.for_all Fun.id
               (List.init (max 0 (n - 1)) (fun i -> G.mem arr.(i) arr.(i + 1) g)))

let prop_closure_monotone =
  QCheck2.Test.make ~name:"closure contains original and is transitive"
    ~count:200 arb_edges (fun edges ->
      let g = g_of edges in
      let c = G.transitive_closure g in
      G.subset g c
      && G.fold_edges
           (fun u v ok ->
             ok
             && List.for_all (fun w -> G.mem u w c) (G.succ v c))
           c true)

let prop_union_commutative =
  QCheck2.Test.make ~name:"union is commutative on edge sets" ~count:200
    QCheck2.Gen.(pair arb_edges arb_edges)
    (fun (e1, e2) ->
      let a = g_of e1 and b = g_of e2 in
      G.equal (G.union a b) (G.union b a))

let suites =
  [
    ( "digraph",
      [
        Alcotest.test_case "basic operations" `Quick test_basic;
        Alcotest.test_case "acyclicity" `Quick test_acyclic;
        Alcotest.test_case "cycle extraction" `Quick test_find_cycle;
        Alcotest.test_case "topological sort" `Quick test_topo;
        Alcotest.test_case "transitive closure" `Quick test_closure;
        Alcotest.test_case "restrict and union" `Quick test_restrict_union;
        Alcotest.test_case "remove vertex" `Quick test_remove_vertex;
        Alcotest.test_case "reachability" `Quick test_reachable;
        QCheck_alcotest.to_alcotest prop_topo_iff_acyclic;
        QCheck_alcotest.to_alcotest prop_cycle_is_real;
        QCheck_alcotest.to_alcotest prop_closure_monotone;
        QCheck_alcotest.to_alcotest prop_union_commutative;
      ] );
  ]
