(* Unit tests for commutativity specifications (Def. 9). *)

open Ooser_core

let check_bool = Alcotest.(check bool)

let mk ?(top = 1) ?(branch = 0) ?(args = []) ~path obj meth =
  Action.v
    ~id:(Action_id.v ~top ~path)
    ~obj:(Obj_id.v obj) ~meth ~args
    ~process:(Process_id.v ~top ~branch)
    ()

let test_rw () =
  let s = Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ] in
  let reg = Commutativity.uniform s in
  let r1 = mk ~top:1 ~path:[ 1 ] "P" "read" in
  let r2 = mk ~top:2 ~path:[ 1 ] "P" "read" in
  let w1 = mk ~top:1 ~path:[ 2 ] "P" "write" in
  let w2 = mk ~top:2 ~path:[ 2 ] "P" "write" in
  check_bool "read/read commute" true (Commutativity.commutes reg r1 r2);
  check_bool "read/write conflict" true (Commutativity.conflicts reg r1 w2);
  check_bool "write/write conflict" true (Commutativity.conflicts reg w1 w2);
  let u = mk ~top:2 ~path:[ 3 ] "P" "mystery" in
  check_bool "unknown conflicts" true (Commutativity.conflicts reg r1 u)

let test_same_process_never_conflicts () =
  let reg = Commutativity.uniform Commutativity.all_conflict in
  let a = mk ~top:1 ~path:[ 1 ] "P" "write" in
  let b = mk ~top:1 ~path:[ 2 ] "P" "write" in
  check_bool "same process commutes (Def. 9)" true
    (Commutativity.commutes reg a b);
  let c = mk ~top:1 ~branch:1 ~path:[ 3 ] "P" "write" in
  check_bool "different branch conflicts" true
    (Commutativity.conflicts reg a c);
  let d = mk ~top:2 ~path:[ 1 ] "P" "write" in
  check_bool "different transaction conflicts" true
    (Commutativity.conflicts reg a d)

let test_self_never_conflicts () =
  let reg = Commutativity.uniform Commutativity.all_conflict in
  let a = mk ~top:1 ~path:[ 1 ] "P" "write" in
  check_bool "no self conflict" false (Commutativity.conflicts reg a a)

let test_matrices () =
  let conflict_spec =
    Commutativity.of_conflict_matrix ~name:"m"
      [ ("insert", "search"); ("insert", "delete") ]
  in
  let reg = Commutativity.uniform conflict_spec in
  let i1 = mk ~top:1 ~path:[ 1 ] "L" "insert" in
  let i2 = mk ~top:2 ~path:[ 1 ] "L" "insert" in
  let s2 = mk ~top:2 ~path:[ 2 ] "L" "search" in
  check_bool "unlisted pair commutes" true (Commutativity.commutes reg i1 i2);
  check_bool "listed pair conflicts (either order)" true
    (Commutativity.conflicts reg i1 s2 && Commutativity.conflicts reg s2 i1);
  let commute_spec =
    Commutativity.of_commute_matrix ~name:"m2" [ ("incr", "incr") ]
  in
  let reg2 = Commutativity.uniform commute_spec in
  let a = mk ~top:1 ~path:[ 1 ] "C" "incr" in
  let b = mk ~top:2 ~path:[ 1 ] "C" "incr" in
  let c = mk ~top:2 ~path:[ 2 ] "C" "reset" in
  check_bool "listed commute" true (Commutativity.commutes reg2 a b);
  check_bool "unlisted conflict" true (Commutativity.conflicts reg2 a c)

let test_by_key () =
  (* Example 1: inserts of different keys commute at the node level even
     though their page accesses conflict. *)
  let spec =
    Commutativity.by_key ~key_of:Commutativity.first_arg
      (Commutativity.of_conflict_matrix ~name:"leaf"
         [ ("insert", "insert"); ("insert", "search") ])
  in
  let reg = Commutativity.uniform spec in
  let ins k top path =
    mk ~top ~path ~args:[ Value.str k ] "Leaf11" "insert"
  in
  let search k top path =
    mk ~top ~path ~args:[ Value.str k ] "Leaf11" "search"
  in
  check_bool "different keys commute" true
    (Commutativity.commutes reg (ins "DBMS" 1 [ 1 ]) (ins "DBS" 2 [ 1 ]));
  check_bool "same key conflicts" true
    (Commutativity.conflicts reg (ins "DBS" 3 [ 1 ]) (search "DBS" 4 [ 1 ]));
  check_bool "missing key falls back to inner" true
    (Commutativity.conflicts reg
       (mk ~top:5 ~path:[ 1 ] "Leaf11" "insert")
       (mk ~top:6 ~path:[ 1 ] "Leaf11" "insert"))

let test_registry_virtual_objects () =
  let spec = Commutativity.of_commute_matrix ~name:"c" [ ("m", "m") ] in
  let reg = Commutativity.fixed [ ("N", spec) ] in
  let a =
    Action.v
      ~id:(Action_id.v ~top:1 ~path:[ 1 ])
      ~obj:(Obj_id.virtualize (Obj_id.v "N") ~rank:1)
      ~meth:"m" ~process:(Process_id.main 1) ()
  in
  let b =
    Action.v
      ~id:(Action_id.v ~top:2 ~path:[ 1 ])
      ~obj:(Obj_id.virtualize (Obj_id.v "N") ~rank:1)
      ~meth:"m" ~process:(Process_id.main 2) ()
  in
  check_bool "virtual object uses original's spec" true
    (Commutativity.commutes reg a b)

let test_fixed_default () =
  let reg = Commutativity.fixed ~default:Commutativity.all_commute [] in
  let a = mk ~top:1 ~path:[ 1 ] "X" "w" in
  let b = mk ~top:2 ~path:[ 1 ] "X" "w" in
  check_bool "default applies" true (Commutativity.commutes reg a b)

let suites =
  [
    ( "commutativity",
      [
        Alcotest.test_case "read/write semantics" `Quick test_rw;
        Alcotest.test_case "same process never conflicts" `Quick
          test_same_process_never_conflicts;
        Alcotest.test_case "no self conflicts" `Quick test_self_never_conflicts;
        Alcotest.test_case "conflict and commute matrices" `Quick test_matrices;
        Alcotest.test_case "keyed refinement (Example 1)" `Quick test_by_key;
        Alcotest.test_case "virtual objects use original spec" `Quick
          test_registry_virtual_objects;
        Alcotest.test_case "fixed registry default" `Quick test_fixed_default;
      ] );
  ]
