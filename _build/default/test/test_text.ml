(* Tests for the textual history format: parsing, printing, round-trips,
   and checking parsed schedules. *)

open Ooser_core
open Ooser_text

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let example1_src =
  {|
# Example 1 of the paper: two inserts of different keys
object Page4712 rw reads = read writes = readx, write
object Leaf11 keyed conflicts = insert:insert, insert:search
object BpTree keyed conflicts = insert:insert, insert:search

txn 1 {
  BpTree.insert("DBMS") {
    Leaf11.insert("DBMS") { Page4712.readx; Page4712.write }
  }
}
txn 2 {
  BpTree.insert("DBS") {
    Leaf11.insert("DBS") { Page4712.readx; Page4712.write }
  }
}

order 1.1.1.1 1.1.1.2 2.1.1.1 2.1.1.2
|}

let test_parse_example1 () =
  match Parser.parse_history example1_src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok h ->
      check_bool "valid" true (History.validate h = Ok ());
      check_int "two transactions" 2 (List.length (History.tops h));
      check_int "four primitives" 4 (List.length (History.order h));
      (* same verdict as the hand-built Example 1 *)
      check_bool "oo-serializable" true (Serializability.oo_serializable h);
      check_int "no top-level conflicts" 0 (Baselines.conflict_pairs h `Oo)

let test_parse_conflicting_order () =
  (* the same-key scenario, interleaved so the page conflict crosses *)
  let src =
    {|
object P rw reads = read writes = write
object M allcommute
txn 1 { M.a { P.read; P.write } }
txn 2 { M.b { P.read; P.write } }
order 1.1.1 2.1.1 1.1.2 2.1.2
|}
  in
  match Parser.parse_history src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok h ->
      (* lost update: both read before either writes *)
      check_bool "rejected" false (Serializability.oo_serializable h)

let test_serial_default () =
  let src = {|
object X allconflict
txn 1 { X.m }
txn 2 { X.m }
|} in
  match Parser.parse_history src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok h ->
      check_bool "serial order derived" true (History.validate h = Ok ());
      check_bool "accepted" true (Serializability.oo_serializable h)

let test_parse_errors () =
  let bad_cases =
    [
      ("missing brace", "txn 1 { X.m");
      ("bad spec", "object X frobnicate");
      ("bad call", "txn 1 { nodotname }");
      ("unterminated string", {|txn 1 { X.m("abc }|});
      ("garbage", "42 ???");
      ("bad order ref", "txn 1 { X.m }\norder 1.x.2");
    ]
  in
  List.iter
    (fun (name, src) ->
      check_bool name true
        (match Parser.parse_string src with Error _ -> true | Ok _ -> false))
    bad_cases;
  (* order mentioning a non-primitive or missing actions fails validation *)
  check_bool "incomplete order" true
    (match Parser.parse_history "txn 1 { X.m; X.n }\norder 1.1" with
    | Error _ -> true
    | Ok _ -> false)

let test_roundtrip_example1 () =
  match Parser.parse_string example1_src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok doc -> (
      let printed = Doc.to_string doc in
      match Parser.parse_string printed with
      | Error msg -> Alcotest.failf "reparse failed: %s@.%s" msg printed
      | Ok doc2 ->
          check_bool "same document" true (doc = doc2);
          let h1 = Doc.to_history doc and h2 = Doc.to_history doc2 in
          check_bool "same verdict" true
            (Serializability.oo_serializable h1
            = Serializability.oo_serializable h2))

let test_of_history_roundtrip () =
  (* a history from the random generator survives printing and reparsing *)
  let p = Ooser_workload.Random_schedules.default_params in
  let h = Ooser_workload.Random_schedules.history ~seed:5 p in
  let doc = Doc.of_history h in
  let printed = Doc.to_string doc in
  match Parser.parse_string printed with
  | Error msg -> Alcotest.failf "reparse failed: %s@.%s" msg printed
  | Ok doc2 ->
      let h2 = Doc.to_history doc2 in
      check_bool "same trees" true
        (List.equal
           (fun a b ->
             Call_tree.all_actions a = Call_tree.all_actions b)
           (History.tops h) (History.tops h2));
      check_bool "same order" true
        (List.equal Ids.Action_id.equal (History.order h) (History.order h2))

let test_spec_decls () =
  let mk name = Doc.spec_of_decl name in
  let act ?(top = 1) ?(args = []) meth =
    Action.v
      ~id:(Ids.Action_id.v ~top ~path:[ 1 ])
      ~obj:(Obj_id.v "X") ~meth ~args
      ~process:(Ids.Process_id.main top) ()
  in
  let rw = mk (Doc.Rw { reads = [ "r" ]; writes = [ "w" ] }) in
  check_bool "rw reads commute" true
    (Commutativity.test rw (act "r") (act ~top:2 "r"));
  check_bool "rw write conflicts" false
    (Commutativity.test rw (act "r") (act ~top:2 "w"));
  let keyed = mk (Doc.Keyed (Doc.Conflicts [ ("m", "m") ])) in
  check_bool "keyed different keys commute" true
    (Commutativity.test keyed
       (act ~args:[ Value.str "a" ] "m")
       (act ~top:2 ~args:[ Value.str "b" ] "m"));
  check_bool "keyed same key conflicts" false
    (Commutativity.test keyed
       (act ~args:[ Value.str "a" ] "m")
       (act ~top:2 ~args:[ Value.str "a" ] "m"))

let test_par_blocks () =
  let src = {|
object P rw reads = read writes = write
txn 1 {
  par {
    P.write(1)
    P.write(2)
  }
}
txn 2 { P.read }
order 1.1 2.1 1.2
|} in
  match Parser.parse_history src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok h ->
      (* par members are distinct processes: the writes of T1 conflict
         with each other, and the read caught between them creates a
         T1 <-> T2 cycle *)
      check_bool "rejected" false (Serializability.oo_serializable h);
      (match History.tops h with
      | [ t1; _ ] ->
          let procs =
            List.map Action.process (Call_tree.primitives t1)
            |> List.sort_uniq Ids.Process_id.compare
          in
          check_int "two processes in T1" 2 (List.length procs);
          check_int "no precedence between par members" 0
            (List.length (Call_tree.prec t1))
      | _ -> Alcotest.fail "expected two transactions");
      (* the same system with T1's writes fully before the read passes *)
      let ok_src = String.concat "\n"
        [ "object P rw reads = read writes = write";
          "txn 1 { par { P.write(1) P.write(2) } }";
          "txn 2 { P.read }";
          "order 1.1 1.2 2.1" ] in
      (match Parser.parse_history ok_src with
      | Error msg -> Alcotest.failf "parse failed: %s" msg
      | Ok h2 -> check_bool "serial order accepted" true
                   (Serializability.oo_serializable h2))

let test_par_roundtrip () =
  let src = {|
object A allcommute
txn 1 {
  A.x
  par {
    A.y { A.z }
    A.w
  }
  A.v
}
|} in
  match Parser.parse_string src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok doc -> (
      let printed = Doc.to_string doc in
      match Parser.parse_string printed with
      | Error msg -> Alcotest.failf "reparse failed: %s@.%s" msg printed
      | Ok doc2 ->
          check_bool "same document" true (doc = doc2);
          let h = Doc.to_history doc and h2 = Doc.to_history doc2 in
          check_bool "same trees" true
            (List.equal
               (fun a b -> Call_tree.all_actions a = Call_tree.all_actions b)
               (History.tops h) (History.tops h2)))

(* Property: random documents survive print -> parse. *)
let prop_doc_roundtrip =
  let open QCheck2 in
  let gen_meth = Gen.oneofl [ "read"; "write"; "insert"; "m1"; "m2" ] in
  let gen_obj = Gen.oneofl [ "A"; "B"; "C.D" ] in
  let gen_args =
    Gen.oneof
      [
        Gen.return [];
        Gen.map (fun s -> [ Value.str s ]) (Gen.oneofl [ "k1"; "k2" ]);
        Gen.map (fun i -> [ Value.int i ]) (Gen.int_bound 99);
      ]
  in
  let rec gen_call depth =
    let open Gen in
    let* c_obj = gen_obj in
    let* c_meth = gen_meth in
    let* c_args = gen_args in
    let* c_children =
      if depth <= 0 then return []
      else
        let* n = int_bound 2 in
        let* calls = list_size (return n) (gen_call (depth - 1)) in
        let* par = bool in
        return
          (if par && List.length calls > 1 then [ Doc.Par_calls calls ]
           else List.map (fun c -> Doc.Seq_call c) calls)
    in
    return { Doc.c_obj; c_meth; c_args; c_children }
  in
  let gen_doc =
    let open Gen in
    let* n_txns = int_range 1 3 in
    let* txns =
      list_size (return n_txns)
        (let* calls = list_size (int_range 1 3) (gen_call 2) in
         return (List.map (fun c -> Doc.Seq_call c) calls))
    in
    return
      {
        Doc.objects = [ ("A", Doc.All_commute); ("B", Doc.All_conflict) ];
        txns = List.mapi (fun i t_calls -> { Doc.t_id = i + 1; t_calls }) txns;
        order = None;
      }
  in
  QCheck2.Test.make ~name:"random documents survive print/parse" ~count:100
    gen_doc (fun doc ->
      match Parser.parse_string (Doc.to_string doc) with
      | Error _ -> false
      | Ok doc2 ->
          let h = Doc.to_history doc and h2 = Doc.to_history doc2 in
          List.equal
            (fun a b -> Call_tree.all_actions a = Call_tree.all_actions b)
            (History.tops h) (History.tops h2))

let suites =
  [
    ( "text",
      [
        Alcotest.test_case "parse Example 1" `Quick test_parse_example1;
        Alcotest.test_case "lost update via order" `Quick
          test_parse_conflicting_order;
        Alcotest.test_case "serial order by default" `Quick test_serial_default;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "print/parse round-trip" `Quick test_roundtrip_example1;
        Alcotest.test_case "of_history round-trip" `Quick test_of_history_roundtrip;
        Alcotest.test_case "spec declarations" `Quick test_spec_decls;
        Alcotest.test_case "par blocks (Def. 9)" `Quick test_par_blocks;
        Alcotest.test_case "par round-trip" `Quick test_par_roundtrip;
        QCheck_alcotest.to_alcotest prop_doc_roundtrip;
      ] );
  ]
