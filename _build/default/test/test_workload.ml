(* Tests for the workload generators: encyclopedia mixes, banking with
   escrow, random schedule sampling, cooperative document editing. *)

open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng
module Dist = Ooser_sim.Dist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_enc_workload_runs () =
  let rng = Rng.create ~seed:3 in
  let p = { Enc_workload.default_params with Enc_workload.n_txns = 4 } in
  let db, _enc, txns = Enc_workload.setup ~rng p in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol txns in
  check_int "all committed" 4 (List.length out.Engine.committed);
  check_bool "history valid" true (History.validate out.Engine.history = Ok ());
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_enc_workload_deterministic () =
  let run () =
    let rng = Rng.create ~seed:9 in
    let p = { Enc_workload.default_params with Enc_workload.n_txns = 3 } in
    let db, _enc, txns = Enc_workload.setup ~rng p in
    let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
    let out = Engine.run db ~protocol txns in
    List.map Ids.Action_id.to_string (History.order out.Engine.history)
  in
  Alcotest.(check (list string)) "same seed same history" (run ()) (run ())

let test_banking_preserves_total () =
  let p = Banking.default_params in
  List.iter
    (fun semantics ->
      let db, counters = Banking.setup ~semantics p in
      let rng = Rng.create ~seed:17 in
      let txns = Banking.transactions ~rng p in
      let protocol =
        Protocol.open_nested ~reg:(Database.spec_registry db) ()
      in
      let out = Engine.run db ~protocol txns in
      check_int "all committed" p.Banking.n_txns
        (List.length out.Engine.committed);
      check_int "total balance preserved"
        (p.Banking.accounts * p.Banking.initial)
        (Banking.total_balance counters))
    [ `Escrow; `Rw; `Conflict ]

let test_banking_escrow_fewer_conflicts () =
  let p = { Banking.default_params with Banking.n_txns = 6 } in
  let conflicts semantics =
    let db, _ = Banking.setup ~semantics p in
    let rng = Rng.create ~seed:23 in
    let txns = Banking.transactions ~rng p in
    let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
    let out = Engine.run db ~protocol txns in
    try List.assoc "lock.conflicts" out.Engine.metrics with Not_found -> 0
  in
  let escrow = conflicts `Escrow in
  let all_conflict = conflicts `Conflict in
  check_bool
    (Printf.sprintf "escrow (%d) <= all-conflict (%d)" escrow all_conflict)
    true (escrow <= all_conflict)

let test_random_schedules_shapes () =
  let p = Random_schedules.default_params in
  let tops, commut = Random_schedules.system ~seed:1 p in
  check_int "txn count" p.Random_schedules.n_txns (List.length tops);
  List.iter
    (fun t -> check_bool "valid tree" true (Call_tree.validate t = Ok ()))
    tops;
  let h = Random_schedules.history ~seed:1 p in
  check_bool "valid history" true (History.validate h = Ok ());
  ignore commut

let test_random_order_respects_program_order () =
  let p = Random_schedules.default_params in
  let tops, _ = Random_schedules.system ~seed:2 p in
  let rng = Rng.create ~seed:5 in
  let order = Random_schedules.random_order rng tops in
  (* within each transaction, primitives appear in program order *)
  List.iter
    (fun tree ->
      let mine = History.serial_primitives tree in
      let filtered =
        List.filter
          (fun id ->
            List.exists (fun m -> Ids.Action_id.equal m id) mine)
          order
      in
      check_bool "program order respected" true
        (List.equal Ids.Action_id.equal filtered mine))
    tops

let test_acceptance_oo_superset () =
  (* the paper's claim: every conventionally serializable interleaving is
     oo-serializable, and usually strictly more are accepted *)
  let p =
    { Random_schedules.default_params with Random_schedules.p_commute = 0.7 }
  in
  let a = Random_schedules.acceptance ~seed:7 ~samples:60 p in
  check_int "samples" 60 a.Random_schedules.samples;
  check_bool
    (Printf.sprintf "oo (%d) >= conventional (%d)"
       a.Random_schedules.oo_accepted a.Random_schedules.conventional_accepted)
    true
    (a.Random_schedules.oo_accepted >= a.Random_schedules.conventional_accepted)

let test_document_editing () =
  let db = Database.create () in
  let doc = Document.create ~sections:8 ~sections_per_page:4 db in
  (* sections share pages *)
  check_bool "co-location" true
    (Document.section_page doc 0 = Document.section_page doc 1);
  let author section ctx =
    Document.edit doc ctx ~section ~text:(Printf.sprintf "by%d" section);
    Value.unit
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out =
    Engine.run db ~protocol
      [ (1, "author1", author 0); (2, "author2", author 1) ]
  in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history);
  (* the edits of different sections commute at document level: no
     top-level dependency *)
  check_int "no top-level conflict" 0
    (Ooser_core.Baselines.conflict_pairs out.Engine.history `Oo);
  let reader ctx =
    let parts = Document.layout doc ctx in
    Alcotest.(check (list string))
      "layout sees the edits"
      [ "by0"; "by1"; "section 2"; "section 3"; "section 4"; "section 5";
        "section 6"; "section 7" ]
      parts;
    Value.unit
  in
  ignore (Engine.run db ~protocol:(Protocol.open_nested ~reg:(Database.spec_registry db) ())
            [ (3, "layout", reader) ])

let test_document_layout_conflicts () =
  let db = Database.create () in
  let doc = Document.create ~sections:4 db in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let editor ctx =
    Document.edit doc ctx ~section:2 ~text:"new";
    Value.unit
  in
  let layouter ctx =
    ignore (Document.layout doc ctx);
    Value.unit
  in
  let out = Engine.run db ~protocol [ (1, "edit", editor); (2, "layout", layouter) ] in
  check_int "both committed" 2 (List.length out.Engine.committed);
  (* a top-level dependency exists between the editor and the layouter *)
  check_bool "top-level dependency present" true
    (Ooser_core.Baselines.conflict_pairs out.Engine.history `Oo > 0)

let suites =
  [
    ( "workload",
      [
        Alcotest.test_case "encyclopedia workload runs" `Quick test_enc_workload_runs;
        Alcotest.test_case "encyclopedia workload deterministic" `Quick
          test_enc_workload_deterministic;
        Alcotest.test_case "banking preserves total balance" `Quick
          test_banking_preserves_total;
        Alcotest.test_case "escrow lowers conflicts" `Quick
          test_banking_escrow_fewer_conflicts;
        Alcotest.test_case "random schedules well-formed" `Quick
          test_random_schedules_shapes;
        Alcotest.test_case "random order respects program order" `Quick
          test_random_order_respects_program_order;
        Alcotest.test_case "acceptance: oo superset of conventional" `Quick
          test_acceptance_oo_superset;
        Alcotest.test_case "cooperative document editing" `Quick
          test_document_editing;
        Alcotest.test_case "layout conflicts with edits" `Quick
          test_document_layout_conflicts;
      ] );
  ]
