(* Tests for the completed encyclopedia API: delete and range scans,
   including their concurrency semantics (index-level phantoms) and
   interaction with aborts. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let open_protocol db = Protocol.open_nested ~reg:(Database.spec_registry db) ()

let with_loaded ?(fanout = 4) n f =
  let db = Database.create () in
  let enc = Encyclopedia.create ~fanout db in
  let loader ctx =
    for i = 1 to n do
      Encyclopedia.insert enc ctx
        ~key:(Printf.sprintf "k%03d" i)
        ~text:(Printf.sprintf "v%d" i)
    done;
    Value.unit
  in
  ignore (Engine.run db ~protocol:(Protocol.unlocked ()) [ (90, "load", loader) ]);
  f db enc

let test_delete_basic () =
  with_loaded 20 (fun db enc ->
      let body ctx =
        check_bool "present before" true
          (Encyclopedia.search enc ctx ~key:"k010" <> None);
        check_bool "delete hits" true (Encyclopedia.delete enc ctx ~key:"k010");
        check_bool "gone" true (Encyclopedia.search enc ctx ~key:"k010" = None);
        check_bool "delete misses" false (Encyclopedia.delete enc ctx ~key:"k010");
        Value.unit
      in
      let out = Engine.run db ~protocol:(open_protocol db) [ (1, "d", body) ] in
      Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
      check_int "one fewer key" 19 (Encyclopedia.structure enc).Encyclopedia.keys;
      (* the item disappears from readSeq too *)
      let reader ctx =
        check_int "items" 19 (List.length (Encyclopedia.read_seq enc ctx));
        Value.unit
      in
      ignore (Engine.run db ~protocol:(open_protocol db) [ (2, "r", reader) ]))

let test_delete_abort_restores () =
  with_loaded 10 (fun db enc ->
      let body ctx =
        ignore (Encyclopedia.delete enc ctx ~key:"k005");
        Runtime.abort "no"
      in
      ignore (Engine.run db ~protocol:(open_protocol db) [ (1, "d", body) ]);
      let reader ctx =
        check_bool "restored by compensation" true
          (Encyclopedia.search enc ctx ~key:"k005" = Some "v5");
        check_int "readSeq intact" 10 (List.length (Encyclopedia.read_seq enc ctx));
        Value.unit
      in
      let out = Engine.run db ~protocol:(open_protocol db) [ (2, "r", reader) ] in
      Alcotest.(check (list int)) "reader ok" [ 2 ] out.Engine.committed)

let test_range_scan () =
  with_loaded 30 (fun db enc ->
      let body ctx =
        let r = Encyclopedia.range enc ctx ~lo:"k010" ~hi:"k020" in
        check_int "ten keys" 10 (List.length r);
        (match r with
        | (k, v) :: _ ->
            check_bool "first" true (k = "k010" && v = "v10")
        | [] -> Alcotest.fail "empty range");
        check_bool "sorted" true
          (List.sort compare r = r);
        check_int "empty range" 0
          (List.length (Encyclopedia.range enc ctx ~lo:"zzz" ~hi:"zzzz"));
        Value.unit
      in
      let out = Engine.run db ~protocol:(open_protocol db) [ (1, "s", body) ] in
      Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed)

let test_range_conflicts_with_insert () =
  with_loaded 10 (fun db enc ->
      let scanner ctx =
        ignore (Encyclopedia.range enc ctx ~lo:"k000" ~hi:"k999");
        Value.unit
      in
      let writer ctx =
        Encyclopedia.insert enc ctx ~key:"k555" ~text:"new";
        Value.unit
      in
      let config =
        let p = open_protocol db in
        {
          (Engine.default_config p) with
          Engine.strategy = Engine.Random_pick (Rng.create ~seed:3);
        }
      in
      let out =
        Engine.run ~config db ~protocol:config.Engine.protocol
          [ (1, "scan", scanner); (2, "write", writer) ]
      in
      check_int "both committed" 2 (List.length out.Engine.committed);
      (* the phantom: a top-level dependency exists between them *)
      check_bool "scan/insert dependency" true
        (Baselines.conflict_pairs out.Engine.history `Oo > 0);
      check_bool "oo-serializable" true
        (Serializability.oo_serializable out.Engine.history))

let test_range_commutes_with_search () =
  with_loaded 10 (fun db enc ->
      let scanner ctx =
        ignore (Encyclopedia.range enc ctx ~lo:"k000" ~hi:"k999");
        Value.unit
      in
      let searcher ctx =
        ignore (Encyclopedia.search enc ctx ~key:"k003");
        Value.unit
      in
      let out =
        Engine.run db ~protocol:(open_protocol db)
          [ (1, "scan", scanner); (2, "search", searcher) ]
      in
      check_int "both committed" 2 (List.length out.Engine.committed);
      check_int "readers do not conflict" 0
        (Baselines.conflict_pairs out.Engine.history `Oo))

let test_delete_insert_roundtrip_random () =
  (* random interleavings of insert/delete on overlapping keys stay
     consistent with a model *)
  let ok = ref true in
  for seed = 1 to 8 do
    with_loaded ~fanout:2 6 (fun db enc ->
        let body ctx =
          ignore (Encyclopedia.delete enc ctx ~key:"k003");
          Encyclopedia.insert enc ctx ~key:"x" ~text:"y";
          ignore (Encyclopedia.delete enc ctx ~key:"x");
          Value.unit
        in
        let config =
          let p = open_protocol db in
          {
            (Engine.default_config p) with
            Engine.strategy = Engine.Random_pick (Rng.create ~seed);
          }
        in
        let out =
          Engine.run ~config db ~protocol:config.Engine.protocol
            [ (1, "a", body) ]
        in
        if
          out.Engine.committed <> [ 1 ]
          || (Encyclopedia.structure enc).Encyclopedia.keys <> 5
        then ok := false)
  done;
  check_bool "all seeds consistent" true !ok

let suites =
  [
    ( "enc_api",
      [
        Alcotest.test_case "delete" `Quick test_delete_basic;
        Alcotest.test_case "delete undone on abort" `Quick
          test_delete_abort_restores;
        Alcotest.test_case "range scan" `Quick test_range_scan;
        Alcotest.test_case "range conflicts with insert (phantom)" `Quick
          test_range_conflicts_with_insert;
        Alcotest.test_case "range commutes with search" `Quick
          test_range_commutes_with_search;
        Alcotest.test_case "delete/insert roundtrips" `Quick
          test_delete_insert_roundtrip_random;
      ] );
  ]
