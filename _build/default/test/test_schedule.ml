(* Integration tests for the schedule computation and the oo-serializability
   checker (Defs. 6-16). *)

open Ooser_core

let check_bool = Alcotest.(check bool)
let o = Obj_id.v
let aid top path = Action_id.v ~top ~path

(* Registry used throughout: pages have read/write semantics, the counter
   object C has commuting increments, object D conflicts on everything. *)
let page_rw = Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]

let reg =
  Commutativity.fixed
    [
      ("PC", page_rw);
      ("PD", page_rw);
      ("C", Commutativity.of_commute_matrix ~name:"counter" [ ("incr", "incr") ]);
      ("D", Commutativity.all_conflict);
    ]

(* T1: C.incr; D.set -- T2: D.set; C.incr, each method reading and writing
   its page. *)
let t1 () =
  Call_tree.Build.(
    top ~n:1
      [
        call (o "C") "incr" [ call (o "PC") "read" []; call (o "PC") "write" [] ];
        call (o "D") "set" [ call (o "PD") "read" []; call (o "PD") "write" [] ];
      ])

let t2 () =
  Call_tree.Build.(
    top ~n:2
      [
        call (o "D") "set" [ call (o "PD") "read" []; call (o "PD") "write" [] ];
        call (o "C") "incr" [ call (o "PC") "read" []; call (o "PC") "write" [] ];
      ])

(* The interleaving where the counter increments execute in the order
   T1 then T2 but the D.sets in the order T2 then T1.  Conventionally this
   is a serialization-graph cycle; with open nesting the commuting
   increments stop the inheritance, so only T2 -> T1 survives. *)
let crossing_history () =
  let order =
    [
      aid 1 [ 1; 1 ]; aid 1 [ 1; 2 ];  (* T1: C.incr pages *)
      aid 2 [ 1; 1 ]; aid 2 [ 1; 2 ];  (* T2: D.set pages *)
      aid 1 [ 2; 1 ]; aid 1 [ 2; 2 ];  (* T1: D.set pages *)
      aid 2 [ 2; 1 ]; aid 2 [ 2; 2 ];  (* T2: C.incr pages *)
    ]
  in
  History.v ~tops:[ t1 (); t2 () ] ~order ~commut:reg

let test_headline_open_nesting_wins () =
  let h = crossing_history () in
  check_bool "well-formed" true (History.validate h = Ok ());
  check_bool "conventionally NOT serializable" false
    (Baselines.conventional_serializable h);
  let v = Serializability.check h in
  check_bool "oo-serializable" true v.Serializability.oo_serializable;
  (* and the witness orders T2 before T1, following the D conflict *)
  match v.Serializability.witness with
  | Some [ x; y ] ->
      check_bool "witness is T2 T1" true
        (Action_id.equal x (Action_id.root 2) && Action_id.equal y (Action_id.root 1))
  | _ -> Alcotest.fail "expected a two-transaction witness"

let test_dependency_stops_at_commuting_level () =
  let h = crossing_history () in
  let sched = Schedule.compute h in
  (* at the page PC there is a transaction dependency between the incrs *)
  let pc = Schedule.find_exn sched (o "PC") in
  check_bool "txn dep at PC" true
    (Action.Rel.mem (aid 1 [ 1 ]) (aid 2 [ 2 ]) pc.Schedule.txn_dep);
  (* it becomes an action dependency at C ... *)
  let c = Schedule.find_exn sched (o "C") in
  check_bool "act dep at C inherited" true
    (Action.Rel.mem (aid 1 [ 1 ]) (aid 2 [ 2 ]) c.Schedule.act_dep);
  (* ... but the increments commute, so no transaction dependency at C *)
  check_bool "txn dep at C empty" true
    (Action.Rel.is_empty c.Schedule.txn_dep);
  (* whereas at D the conflict propagates to the top-level transactions *)
  let d = Schedule.find_exn sched (o "D") in
  check_bool "txn dep at D reaches tops" true
    (Action.Rel.mem (Action_id.root 2) (Action_id.root 1) d.Schedule.txn_dep)

(* Lost update: the two increments' page operations interleave
   r1 r2 w1 w2.  The page-level transaction dependency relation is cyclic:
   the schedule must be rejected even though increments commute. *)
let test_lost_update_rejected () =
  let t1 =
    Call_tree.Build.(
      top ~n:1
        [ call (o "C") "incr" [ call (o "PC") "read" []; call (o "PC") "write" [] ] ])
  in
  let t2 =
    Call_tree.Build.(
      top ~n:2
        [ call (o "C") "incr" [ call (o "PC") "read" []; call (o "PC") "write" [] ] ])
  in
  let order =
    [ aid 1 [ 1; 1 ]; aid 2 [ 1; 1 ]; aid 1 [ 1; 2 ]; aid 2 [ 1; 2 ] ]
  in
  let h = History.v ~tops:[ t1; t2 ] ~order ~commut:reg in
  let v = Serializability.check h in
  check_bool "lost update rejected" false v.Serializability.oo_serializable;
  (* the failing object is the page *)
  let bad =
    List.filter
      (fun ov -> not (Serializability.object_oo_serializable ov))
      v.Serializability.objects
  in
  check_bool "page schedule is the culprit" true
    (List.exists
       (fun ov -> Obj_id.equal ov.Serializability.obj (o "PC"))
       bad)

let test_serialized_increments_accepted () =
  let t1 =
    Call_tree.Build.(
      top ~n:1
        [ call (o "C") "incr" [ call (o "PC") "read" []; call (o "PC") "write" [] ] ])
  in
  let t2 =
    Call_tree.Build.(
      top ~n:2
        [ call (o "C") "incr" [ call (o "PC") "read" []; call (o "PC") "write" [] ] ])
  in
  let order =
    [ aid 1 [ 1; 1 ]; aid 1 [ 1; 2 ]; aid 2 [ 1; 1 ]; aid 2 [ 1; 2 ] ]
  in
  let h = History.v ~tops:[ t1; t2 ] ~order ~commut:reg in
  check_bool "accepted" true (Serializability.oo_serializable h);
  check_bool "also conventionally fine" true
    (Baselines.conventional_serializable h)

let test_serial_history_is_everything () =
  let h = History.of_serial ~tops:[ t1 (); t2 () ] ~commut:reg in
  let v = Serializability.check h in
  check_bool "oo-serializable" true v.Serializability.oo_serializable;
  check_bool "conventional too" true (Baselines.conventional_serializable h);
  List.iter
    (fun ov ->
      check_bool
        (Fmt.str "serial at %a" Obj_id.pp ov.Serializability.obj)
        true ov.Serializability.serial;
      check_bool
        (Fmt.str "conform at %a" Obj_id.pp ov.Serializability.obj)
        true ov.Serializability.conform)
    v.Serializability.objects

let test_conform_violation_detected () =
  (* Conformance (Def. 7) is a per-object notion: two ordered actions of
     one transaction on the SAME object must execute in program order.
     T1 increments C twice; executing the second increment's page
     operations first violates n₃ at both PC and C. *)
  let t =
    Call_tree.Build.(
      top ~n:1
        [
          call (o "C") "incr" [ call (o "PC") "read" []; call (o "PC") "write" [] ];
          call (o "C") "incr" [ call (o "PC") "read" []; call (o "PC") "write" [] ];
        ])
  in
  let bad = [ aid 1 [ 2; 1 ]; aid 1 [ 2; 2 ]; aid 1 [ 1; 1 ]; aid 1 [ 1; 2 ] ] in
  let h = History.v ~tops:[ t ] ~order:bad ~commut:reg in
  let v = Serializability.check h in
  let conform_at name =
    List.for_all
      (fun ov ->
        (not (Obj_id.equal ov.Serializability.obj (o name)))
        || ov.Serializability.conform)
      v.Serializability.objects
  in
  check_bool "PC non-conform" false (conform_at "PC");
  check_bool "C non-conform" false (conform_at "C");
  (* the program-order execution is conform everywhere *)
  let good = [ aid 1 [ 1; 1 ]; aid 1 [ 1; 2 ]; aid 1 [ 2; 1 ]; aid 1 [ 2; 2 ] ] in
  let h' = History.v ~tops:[ t ] ~order:good ~commut:reg in
  let v' = Serializability.check h' in
  check_bool "good order conform" true
    (List.for_all (fun ov -> ov.Serializability.conform) v'.Serializability.objects)

(* Re-entrant call: the insert on node N calls a rearrange on N itself
   (the B-link father rearrangement of §2).  The extension must move the
   inner action to a virtual object N' and the history must still check. *)
let test_virtual_extension () =
  let tree n =
    Call_tree.Build.(
      top ~n
        [
          call (o "N") "insert"
            [
              call (o "PN") "write" [];
              call (o "N") "rearrange" [ call (o "PN") "write" [] ];
            ];
        ])
  in
  let order =
    [ aid 1 [ 1; 1 ]; aid 1 [ 1; 2; 1 ]; aid 2 [ 1; 1 ]; aid 2 [ 1; 2; 1 ] ]
  in
  let reg =
    Commutativity.fixed
      [
        ("PN", page_rw);
        ("N", Commutativity.of_conflict_matrix ~name:"node"
                [ ("insert", "insert"); ("insert", "rearrange");
                  ("rearrange", "rearrange") ]);
      ]
  in
  let h = History.v ~tops:[ tree 1; tree 2 ] ~order ~commut:reg in
  let sched = Schedule.compute h in
  let ext = Schedule.extension sched in
  (* one virtual object N' exists and hosts both rearranges *)
  (match Extension.virtual_objects ext with
  | [ vn ] ->
      check_bool "named N'" true (Obj_id.equal vn (Obj_id.virtualize (o "N") ~rank:1));
      let acts = Extension.acts_of ext vn in
      check_bool "hosts both rearranges and duplicates" true
        (Action_id.Set.mem (aid 1 [ 1; 2 ]) acts
        && Action_id.Set.mem (aid 2 [ 1; 2 ]) acts)
  | l ->
      Alcotest.failf "expected exactly one virtual object, got %d" (List.length l));
  (* the real object N no longer contains the rearranges *)
  check_bool "N lost the rearranges" true
    (not (Action_id.Set.mem (aid 1 [ 1; 2 ]) (Extension.acts_of ext (o "N"))));
  (* the interleaving serializes T1 before T2 everywhere: accepted *)
  let v = Serializability.check h in
  check_bool "oo-serializable" true v.Serializability.oo_serializable

(* Same-call-path pairs never conflict: the rearrange and its calling
   insert touch the same (virtual) object pair but belong to one call
   path. *)
let test_call_path_exclusion () =
  check_bool "ancestor excluded" true
    (Extension.same_call_path (aid 1 [ 1 ]) (aid 1 [ 1; 2 ]));
  check_bool "virtual ids are devirtualised first" true
    (Extension.same_call_path
       (Action_id.virtualize (aid 1 [ 1 ]) ~rank:1)
       (aid 1 [ 1; 2 ]));
  check_bool "siblings not excluded" false
    (Extension.same_call_path (aid 1 [ 1 ]) (aid 1 [ 2 ]));
  check_bool "different transactions not excluded" false
    (Extension.same_call_path (aid 1 [ 1 ]) (aid 2 [ 1; 1 ]))

(* Added dependencies (Def. 15): a transaction dependency whose endpoints
   are actions on DIFFERENT objects cannot become an action dependency
   anywhere; it is recorded redundantly at both objects. *)
let test_added_dependencies_present () =
  (* T1: X.m -> P.write; T2: Y.n -> P.write.  The callers of the two
     conflicting page writes live on X and Y respectively. *)
  let reg =
    Commutativity.fixed
      [ ("P", page_rw); ("X", Commutativity.all_conflict);
        ("Y", Commutativity.all_conflict) ]
  in
  let tx =
    Call_tree.Build.(top ~n:1 [ call (o "X") "m" [ call (o "P") "write" [] ] ])
  in
  let ty =
    Call_tree.Build.(top ~n:2 [ call (o "Y") "n" [ call (o "P") "write" [] ] ])
  in
  let h =
    History.v ~tops:[ tx; ty ] ~order:[ aid 1 [ 1; 1 ]; aid 2 [ 1; 1 ] ]
      ~commut:reg
  in
  let sched = Schedule.compute h in
  let p = Schedule.find_exn sched (o "P") in
  check_bool "txn dep at P between X.m and Y.n" true
    (Action.Rel.mem (aid 1 [ 1 ]) (aid 2 [ 1 ]) p.Schedule.txn_dep);
  let x = Schedule.find_exn sched (o "X") in
  let y = Schedule.find_exn sched (o "Y") in
  check_bool "added at X" true
    (Action.Rel.mem (aid 1 [ 1 ]) (aid 2 [ 1 ]) x.Schedule.added_dep);
  check_bool "added at Y" true
    (Action.Rel.mem (aid 1 [ 1 ]) (aid 2 [ 1 ]) y.Schedule.added_dep);
  (* but it is not an action dependency at either (endpoints on different
     objects) *)
  check_bool "not act dep at X" false
    (Action.Rel.mem (aid 1 [ 1 ]) (aid 2 [ 1 ]) x.Schedule.act_dep);
  check_bool "system still serializable" true
    (Serializability.check h).Serializability.oo_serializable

let test_multilevel_agrees_on_layered () =
  (* the crossing history is strictly layered (all leaves at depth 2), so
     the multi-level checker applies and must agree with the oo one *)
  let h = crossing_history () in
  check_bool "layered" true (Baselines.is_layered h);
  check_bool "ml-serializable" true (Baselines.multilevel_serializable h);
  (* and the lost-update history must be rejected by both *)
  let t1 =
    Call_tree.Build.(
      top ~n:1
        [ call (o "C") "incr" [ call (o "PC") "read" []; call (o "PC") "write" [] ] ])
  in
  let t2 =
    Call_tree.Build.(
      top ~n:2
        [ call (o "C") "incr" [ call (o "PC") "read" []; call (o "PC") "write" [] ] ])
  in
  let order =
    [ aid 1 [ 1; 1 ]; aid 2 [ 1; 1 ]; aid 1 [ 1; 2 ]; aid 2 [ 1; 2 ] ]
  in
  let h' = History.v ~tops:[ t1; t2 ] ~order ~commut:reg in
  check_bool "ml rejects lost update" false (Baselines.multilevel_serializable h')

let test_conflict_pair_counts () =
  let h = crossing_history () in
  let conv = Baselines.conflict_pairs h `Conventional in
  let oo = Baselines.conflict_pairs h `Oo in
  check_bool "oo strictly fewer top-level conflicts" true (oo < conv);
  check_bool "oo has the surviving D conflict" true (oo >= 1)

let suites =
  [
    ( "schedule",
      [
        Alcotest.test_case "headline: open nesting admits the crossing schedule"
          `Quick test_headline_open_nesting_wins;
        Alcotest.test_case "inheritance stops at commuting level" `Quick
          test_dependency_stops_at_commuting_level;
        Alcotest.test_case "lost update rejected" `Quick test_lost_update_rejected;
        Alcotest.test_case "serialized increments accepted" `Quick
          test_serialized_increments_accepted;
        Alcotest.test_case "serial history conform+serial+oo" `Quick
          test_serial_history_is_everything;
        Alcotest.test_case "conformance violation detected" `Quick
          test_conform_violation_detected;
        Alcotest.test_case "virtual extension (re-entrant insert)" `Quick
          test_virtual_extension;
        Alcotest.test_case "call-path exclusion" `Quick test_call_path_exclusion;
        Alcotest.test_case "added dependencies recorded" `Quick
          test_added_dependencies_present;
        Alcotest.test_case "multi-level checker agrees on layered" `Quick
          test_multilevel_agrees_on_layered;
        Alcotest.test_case "conflict pair counts (headline claim)" `Quick
          test_conflict_pair_counts;
      ] );
  ]
