(* Tests for the supporting utilities: values, PRNG, distributions,
   statistics. *)

open Ooser_core
module Rng = Ooser_sim.Rng
module Dist = Ooser_sim.Dist
module Stats = Ooser_sim.Stats

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_value_ordering () =
  let vs =
    [ Value.unit; Value.bool false; Value.int 3; Value.str "a";
      Value.pair (Value.int 1) (Value.str "x");
      Value.list [ Value.int 1; Value.int 2 ] ]
  in
  List.iter (fun v -> check_int "reflexive" 0 (Value.compare v v)) vs;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_int "antisymmetric" 0
            (compare (Value.compare a b) (-Value.compare b a)))
        vs)
    vs;
  check_bool "int order" true (Value.compare (Value.int 1) (Value.int 2) < 0);
  check_bool "accessors" true
    (Value.to_int (Value.int 7) = Some 7
    && Value.to_str (Value.int 7) = None
    && Value.to_bool (Value.bool true) = Some true)

let test_value_exn_accessors () =
  check_int "to_int_exn" 5 (Value.to_int_exn (Value.int 5));
  check_bool "to_str_exn raises" true
    (match Value.to_str_exn (Value.int 5) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "to_list_exn" true
    (Value.to_list_exn (Value.list [ Value.int 1 ]) = [ Value.int 1 ])

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys;
  let c = Rng.create ~seed:43 in
  let zs = List.init 50 (fun _ -> Rng.int c 1000) in
  check_bool "different seed differs" true (xs <> zs)

let test_rng_ranges () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    check_bool "in range" true (x >= 0 && x < 10);
    let f = Rng.float rng in
    check_bool "float range" true (f >= 0.0 && f < 1.0)
  done;
  check_bool "bad bound" true
    (match Rng.int rng 0 with exception Invalid_argument _ -> true | _ -> false)

let test_rng_helpers () =
  let rng = Rng.create ~seed:9 in
  check_bool "pick member" true (List.mem (Rng.pick rng [ 1; 2; 3 ]) [ 1; 2; 3 ]);
  let l = [ 1; 2; 3; 4; 5 ] in
  let s = Rng.shuffle rng l in
  Alcotest.(check (list int)) "shuffle is a permutation" l (List.sort compare s);
  check_bool "pick empty raises" true
    (match Rng.pick rng [] with exception Invalid_argument _ -> true | _ -> false)

let test_dist_uniform () =
  let rng = Rng.create ~seed:11 in
  let d = Dist.uniform 10 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let x = Dist.sample rng d in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c -> check_bool "roughly uniform" true (c > 700 && c < 1300))
    counts

let test_dist_zipf_skew () =
  let rng = Rng.create ~seed:13 in
  let d = Dist.zipf ~theta:1.0 100 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let x = Dist.sample rng d in
    counts.(x) <- counts.(x) + 1
  done;
  check_bool "head heavier than tail" true (counts.(0) > 10 * counts.(99));
  check_bool "head heavier than middle" true (counts.(0) > 2 * counts.(9))

let test_stats () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 6.0 ];
  check_int "count" 3 (Stats.count s);
  check_bool "mean" true (abs_float (Stats.mean s -. 4.0) < 1e-9);
  check_bool "min/max" true
    (Stats.min_value s = 2.0 && Stats.max_value s = 6.0);
  check_bool "variance" true
    (abs_float (Stats.variance s -. (8.0 /. 3.0)) < 1e-9);
  let t = Stats.create () in
  Stats.add_int t 10;
  let m = Stats.merge s t in
  check_int "merged count" 4 (Stats.count m);
  check_bool "merged max" true (Stats.max_value m = 10.0)

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "a";
  Stats.Counter.incr c "a";
  Stats.Counter.incr ~by:5 c "b";
  check_int "a" 2 (Stats.Counter.get c "a");
  check_int "b" 5 (Stats.Counter.get c "b");
  check_int "absent" 0 (Stats.Counter.get c "zzz");
  Alcotest.(check (list (pair string int)))
    "to_list sorted" [ ("a", 2); ("b", 5) ]
    (Stats.Counter.to_list c)

let suites =
  [
    ( "misc",
      [
        Alcotest.test_case "value ordering" `Quick test_value_ordering;
        Alcotest.test_case "value accessors" `Quick test_value_exn_accessors;
        Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
        Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
        Alcotest.test_case "rng helpers" `Quick test_rng_helpers;
        Alcotest.test_case "uniform distribution" `Quick test_dist_uniform;
        Alcotest.test_case "zipf skew" `Quick test_dist_zipf_skew;
        Alcotest.test_case "streaming stats" `Quick test_stats;
        Alcotest.test_case "counters" `Quick test_counter;
      ] );
  ]
