(* Unit and property tests for the B+ tree substrate. *)

open Ooser_storage
open Ooser_btree

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_tree ?(max_entries = 4) ?(pool_capacity = 64) () =
  let disk = Disk.create ~page_size:4096 () in
  let pool = Buffer_pool.create ~capacity:pool_capacity disk in
  Btree.create ~max_entries pool

let key i = Printf.sprintf "k%04d" i

let test_node_codec_roundtrip () =
  let l = Node.leaf ~right_link:42 ~high_key:"m" [ ("a", "1"); ("b", "2") ] in
  let l' = Node.decode (Node.encode l) in
  check_bool "leaf roundtrip" true
    (Node.entries l = Node.entries l'
    && Node.right_link l' = Some 42
    && Node.high_key l' = Some "m"
    && Node.kind l' = Node.Leaf);
  let n = Node.internal ~leftmost:7 [ ("g", "9"); ("p", "11") ] in
  let n' = Node.decode (Node.encode n) in
  check_bool "internal roundtrip" true
    (Node.entries n' = Node.entries n
    && Node.leftmost n' = Some 7
    && Node.kind n' = Node.Internal
    && Node.high_key n' = None)

let test_node_split_leaf () =
  let l = Node.leaf [ ("a", "1"); ("b", "2"); ("c", "3"); ("d", "4") ] in
  let make_left, sep, right = Node.split_leaf l in
  Alcotest.(check string) "separator" "c" sep;
  let left = make_left 99 in
  check_int "left size" 2 (Node.size left);
  check_int "right size" 2 (Node.size right);
  check_bool "left linked" true (Node.right_link left = Some 99);
  check_bool "left high = sep" true (Node.high_key left = Some "c");
  check_bool "left covers b" true (Node.covers left "b");
  check_bool "left does not cover c" false (Node.covers left "c")

let test_node_route () =
  let n =
    Node.internal ~leftmost:1 ~high_key:"z" ~right_link:50
      [ ("g", "2"); ("p", "3") ]
  in
  check_bool "below first separator" true (Node.route n "a" = Node.Child 1);
  check_bool "at separator" true (Node.route n "g" = Node.Child 2);
  check_bool "between" true (Node.route n "m" = Node.Child 2);
  check_bool "last" true (Node.route n "q" = Node.Child 3);
  check_bool "beyond high key follows link" true
    (Node.route n "z" = Node.Follow_right 50)

let test_insert_search_small () =
  let t = mk_tree () in
  Btree.insert t "b" "2";
  Btree.insert t "a" "1";
  Btree.insert t "c" "3";
  Alcotest.(check (option string)) "find a" (Some "1") (Btree.search t "a");
  Alcotest.(check (option string)) "find c" (Some "3") (Btree.search t "c");
  Alcotest.(check (option string)) "missing" None (Btree.search t "zz");
  Btree.insert t "a" "10";
  Alcotest.(check (option string)) "upsert" (Some "10") (Btree.search t "a")

let test_splits_and_height () =
  let t = mk_tree ~max_entries:4 () in
  for i = 1 to 200 do
    Btree.insert t (key i) (string_of_int i)
  done;
  let s = Btree.stats t in
  check_bool "tree grew" true (s.Btree.height >= 3);
  check_int "all keys" 200 s.Btree.keys;
  check_bool "splits happened" true (Btree.splits t > 10);
  check_bool "invariants" true (Btree.check_invariants t = Ok ());
  for i = 1 to 200 do
    check_bool (key i) true (Btree.search t (key i) = Some (string_of_int i))
  done

let test_descending_inserts () =
  let t = mk_tree ~max_entries:4 () in
  for i = 200 downto 1 do
    Btree.insert t (key i) (string_of_int i)
  done;
  check_bool "invariants" true (Btree.check_invariants t = Ok ());
  check_int "cardinal" 200 (Btree.cardinal t)

let test_delete () =
  let t = mk_tree ~max_entries:4 () in
  for i = 1 to 50 do
    Btree.insert t (key i) (string_of_int i)
  done;
  check_bool "delete present" true (Btree.delete t (key 25));
  check_bool "delete absent" false (Btree.delete t (key 25));
  Alcotest.(check (option string)) "gone" None (Btree.search t (key 25));
  check_int "one fewer" 49 (Btree.cardinal t);
  check_bool "invariants after delete" true (Btree.check_invariants t = Ok ())

let test_delete_rebalances () =
  let t = mk_tree ~max_entries:4 () in
  for i = 1 to 64 do
    Btree.insert t (key i) "v"
  done;
  (* drain most of the tree: merges and borrows must fire and the
     structure must stay sound throughout *)
  for i = 1 to 56 do
    check_bool "deleted" true (Btree.delete t (key i));
    check_bool "sound" true (Btree.check_invariants t = Ok ())
  done;
  check_bool "merges happened" true (Btree.merges t > 0);
  check_int "remaining" 8 (Btree.cardinal t);
  for i = 57 to 64 do
    check_bool "still there" true (Btree.search t (key i) = Some "v")
  done

let test_root_collapse () =
  (* a two-level tree whose leaves merge back into one collapses the
     root; deeper trees keep their internal skeleton (lazy internal
     rebalancing), but still shed leaves *)
  let t = mk_tree ~max_entries:4 () in
  for i = 1 to 8 do
    Btree.insert t (key i) "v"
  done;
  let tall = (Btree.stats t).Btree.height in
  check_bool "grew to two levels" true (tall = 2);
  for i = 1 to 7 do
    ignore (Btree.delete t (key i))
  done;
  check_bool "invariants" true (Btree.check_invariants t = Ok ());
  let short = (Btree.stats t).Btree.height in
  check_bool
    (Printf.sprintf "height shrank (%d -> %d)" tall short)
    true (short < tall);
  check_bool "survivor" true (Btree.search t (key 8) = Some "v");
  (* a deep tree sheds leaves on mass deletion even without internal
     rebalancing *)
  let t2 = mk_tree ~max_entries:4 () in
  for i = 1 to 100 do
    Btree.insert t2 (key i) "v"
  done;
  let before = (Btree.stats t2).Btree.leaves in
  for i = 1 to 90 do
    ignore (Btree.delete t2 (key i))
  done;
  check_bool "leaves shed" true ((Btree.stats t2).Btree.leaves < before);
  check_bool "sound" true (Btree.check_invariants t2 = Ok ())

let test_range_and_fold () =
  let t = mk_tree ~max_entries:4 () in
  for i = 1 to 60 do
    Btree.insert t (key i) (string_of_int i)
  done;
  let r = Btree.range t ~lo:(key 10) ~hi:(key 20) in
  check_int "range size" 10 (List.length r);
  Alcotest.(check string) "first" (key 10) (fst (List.hd r));
  let all = Btree.to_list t in
  check_int "to_list size" 60 (List.length all);
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) all in
  check_bool "to_list sorted" true (all = sorted)

let test_tiny_pool_pressure () =
  (* the tree must work with a pool holding only a handful of frames *)
  let disk = Disk.create ~page_size:4096 () in
  let pool = Buffer_pool.create ~capacity:4 disk in
  let t = Btree.create ~max_entries:4 pool in
  for i = 1 to 100 do
    Btree.insert t (key i) (string_of_int i)
  done;
  check_bool "evictions under pressure" true (Buffer_pool.evictions pool > 0);
  check_bool "still correct" true (Btree.check_invariants t = Ok ());
  check_int "cardinal" 100 (Btree.cardinal t)

(* Model-based property: tree = Map over random insert/delete/search. *)
let prop_model =
  let open QCheck2 in
  let gen_ops =
    Gen.(
      list_size (int_bound 200)
        (oneof
           [
             map (fun k -> `Insert (k mod 50)) (int_bound 1000);
             map (fun k -> `Delete (k mod 50)) (int_bound 1000);
           ]))
  in
  QCheck2.Test.make ~name:"btree agrees with Map model" ~count:60 gen_ops
    (fun ops ->
      let t = mk_tree ~max_entries:4 () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Insert k ->
              Btree.insert t (key k) (string_of_int k);
              model := (key k, string_of_int k) :: List.remove_assoc (key k) !model
          | `Delete k ->
              let present = List.mem_assoc (key k) !model in
              let deleted = Btree.delete t (key k) in
              assert (present = deleted);
              model := List.remove_assoc (key k) !model)
        ops;
      Btree.check_invariants t = Ok ()
      && List.for_all (fun (k, v) -> Btree.search t k = Some v) !model
      && Btree.cardinal t = List.length !model)

let prop_fill_factor =
  let open QCheck2 in
  QCheck2.Test.make ~name:"bulk load keeps nodes at least half full-ish"
    ~count:20 (Gen.int_range 50 300) (fun n ->
      let t = mk_tree ~max_entries:8 () in
      for i = 1 to n do
        Btree.insert t (key i) "v"
      done;
      let s = Btree.stats t in
      s.Btree.keys = n && s.Btree.avg_fill > 0.3)

let suites =
  [
    ( "btree",
      [
        Alcotest.test_case "node codec roundtrip" `Quick test_node_codec_roundtrip;
        Alcotest.test_case "leaf split" `Quick test_node_split_leaf;
        Alcotest.test_case "routing" `Quick test_node_route;
        Alcotest.test_case "insert/search small" `Quick test_insert_search_small;
        Alcotest.test_case "splits and height" `Quick test_splits_and_height;
        Alcotest.test_case "descending inserts" `Quick test_descending_inserts;
        Alcotest.test_case "delete" `Quick test_delete;
        Alcotest.test_case "delete rebalances (merge/borrow)" `Quick
          test_delete_rebalances;
        Alcotest.test_case "root collapse" `Quick test_root_collapse;
        Alcotest.test_case "range and fold" `Quick test_range_and_fold;
        Alcotest.test_case "tiny buffer pool pressure" `Quick
          test_tiny_pool_pressure;
        QCheck_alcotest.to_alcotest prop_model;
        QCheck_alcotest.to_alcotest prop_fill_factor;
      ] );
  ]
