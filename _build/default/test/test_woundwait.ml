(* Tests for the wound-wait deadlock prevention policy. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let o = Obj_id.v

let register_cell db name init =
  let state = ref init in
  let read _ _ = Value.int !state in
  let write ctx args =
    match args with
    | [ Value.Int v ] ->
        let old = !state in
        Runtime.on_undo ctx (fun () -> state := old);
        state := v;
        Value.unit
    | _ -> invalid_arg "write"
  in
  Database.register db (o name)
    ~spec:(Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ])
    [ ("read", Database.primitive read); ("write", Database.primitive write) ];
  state

let ww_config ?(seed = 1) protocol =
  {
    (Engine.default_config protocol) with
    Engine.deadlock = Engine.Wound_wait;
    Engine.strategy = Engine.Random_pick (Rng.create ~seed);
  }

let test_wound_wait_resolves_crossing () =
  (* the classic A/B crossing deadlock: under wound-wait no cycle ever
     forms — the older transaction wounds the younger holder *)
  let db = Database.create () in
  let a = register_cell db "A" 0 in
  let b = register_cell db "B" 0 in
  let t1 ctx =
    ignore (Runtime.call ctx (o "A") "write" [ Value.int 1 ]);
    ignore (Runtime.call ctx (o "B") "write" [ Value.int 1 ]);
    Value.unit
  in
  let t2 ctx =
    ignore (Runtime.call ctx (o "B") "write" [ Value.int 2 ]);
    ignore (Runtime.call ctx (o "A") "write" [ Value.int 2 ]);
    Value.unit
  in
  let protocol = Protocol.flat_2pl ~reg:(Database.spec_registry db) () in
  let config = ww_config protocol in
  let out = Engine.run ~config db ~protocol [ (1, "t1", t1); (2, "t2", t2) ] in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_int "no detector deadlocks" 0
    (try List.assoc "deadlocks" out.Engine.metrics with Not_found -> 0);
  check_bool "serializable" true
    (Baselines.conventional_serializable out.Engine.history);
  check_bool "state consistent" true (!a > 0 && !b > 0)

let test_wounds_counted () =
  (* T2 (younger) grabs the lock first; T1 (older) wounds it *)
  let db = Database.create () in
  ignore (register_cell db "X" 0);
  let slow ctx =
    (* touch X early, then do other work so the older txn collides *)
    ignore (Runtime.call ctx (o "X") "write" [ Value.int 2 ]);
    ignore (Runtime.call ctx (o "X") "read" []);
    ignore (Runtime.call ctx (o "X") "read" []);
    Value.unit
  in
  let old_txn ctx =
    ignore (Runtime.call ctx (o "X") "write" [ Value.int 1 ]);
    Value.unit
  in
  let protocol = Protocol.flat_2pl ~reg:(Database.spec_registry db) () in
  (* round-robin: let T2 start first by listing it first *)
  let config =
    { (Engine.default_config protocol) with Engine.deadlock = Engine.Wound_wait }
  in
  let out =
    Engine.run ~config db ~protocol [ (2, "young", slow); (1, "old", old_txn) ]
  in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_bool "a wound happened" true
    ((try List.assoc "wounds" out.Engine.metrics with Not_found -> 0) > 0)

let test_wound_wait_many_txns () =
  (* a pile of read-modify-write increments: wound-wait must keep making
     progress and end with the correct count *)
  let db = Database.create () in
  let cell = register_cell db "R" 0 in
  let incr ctx _ =
    let v = Value.to_int_exn (Runtime.call ctx (o "R") "read" []) in
    ignore (Runtime.call ctx (o "R") "write" [ Value.int (v + 1) ]);
    Value.unit
  in
  Database.register db (o "C")
    ~spec:(Commutativity.of_commute_matrix ~name:"counter" [ ("incr", "incr") ])
    [ ("incr", Database.composite incr) ];
  let body ctx =
    ignore (Runtime.call ctx (o "C") "incr" []);
    Value.unit
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let config = ww_config ~seed:3 protocol in
  let out =
    Engine.run ~config db ~protocol
      (List.init 6 (fun i -> (i + 1, Printf.sprintf "t%d" (i + 1), body)))
  in
  check_int "all committed" 6 (List.length out.Engine.committed);
  check_int "correct count" 6 !cell;
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_wait_die_resolves_crossing () =
  let db = Database.create () in
  let a = register_cell db "A" 0 in
  let b = register_cell db "B" 0 in
  let t1 ctx =
    ignore (Runtime.call ctx (o "A") "write" [ Value.int 1 ]);
    ignore (Runtime.call ctx (o "B") "write" [ Value.int 1 ]);
    Value.unit
  in
  let t2 ctx =
    ignore (Runtime.call ctx (o "B") "write" [ Value.int 2 ]);
    ignore (Runtime.call ctx (o "A") "write" [ Value.int 2 ]);
    Value.unit
  in
  let protocol = Protocol.flat_2pl ~reg:(Database.spec_registry db) () in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.deadlock = Engine.Wait_die;
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:2);
    }
  in
  let out = Engine.run ~config db ~protocol [ (1, "t1", t1); (2, "t2", t2) ] in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_int "no detector deadlocks" 0
    (try List.assoc "deadlocks" out.Engine.metrics with Not_found -> 0);
  check_bool "a young transaction died" true
    ((try List.assoc "dies" out.Engine.metrics with Not_found -> 0) > 0);
  check_bool "serializable" true
    (Baselines.conventional_serializable out.Engine.history);
  check_bool "state consistent" true (!a > 0 && !b > 0)

let test_policies_agree_on_results () =
  (* both policies produce correct (if different) schedules over many
     seeds *)
  let ok = ref true in
  List.iter
    (fun policy ->
      for seed = 1 to 6 do
        let db = Database.create () in
        let p =
          { Ooser_workload.Banking.default_params with
            Ooser_workload.Banking.n_txns = 5 }
        in
        let db', counters = Ooser_workload.Banking.setup ~semantics:`Rw p in
        ignore db;
        let txns = Ooser_workload.Banking.transactions ~rng:(Rng.create ~seed) p in
        let protocol =
          Protocol.open_nested ~reg:(Database.spec_registry db') ()
        in
        let config =
          {
            (Engine.default_config protocol) with
            Engine.deadlock = policy;
            Engine.strategy = Engine.Random_pick (Rng.create ~seed:(seed * 5));
          }
        in
        let out = Engine.run ~config db' ~protocol txns in
        if
          (not (Serializability.oo_serializable out.Engine.history))
          || Ooser_workload.Banking.total_balance counters
             <> p.Ooser_workload.Banking.accounts
                * p.Ooser_workload.Banking.initial
        then ok := false
      done)
    [ Engine.Detect; Engine.Wound_wait; Engine.Wait_die ];
  check_bool "all policies sound" true !ok

let suites =
  [
    ( "wound_wait",
      [
        Alcotest.test_case "resolves the crossing deadlock" `Quick
          test_wound_wait_resolves_crossing;
        Alcotest.test_case "wounds are counted" `Quick test_wounds_counted;
        Alcotest.test_case "wait-die resolves the crossing" `Quick
          test_wait_die_resolves_crossing;
        Alcotest.test_case "many transactions make progress" `Quick
          test_wound_wait_many_txns;
        Alcotest.test_case "policies agree on correctness" `Quick
          test_policies_agree_on_results;
      ] );
  ]
