(* The correctness matrix: every protocol × every workload, seeded.
   Locking protocols must commit everything with the right final state
   and a checkable history; the certifier must too; the unlocked engine
   must at least keep state consistent with what committed. *)

open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let check_bool = Alcotest.(check bool)

type mode = Locking of string | Certify

let modes =
  [
    (Locking "open", `Open);
    (Locking "flat", `Flat);
    (Locking "closed", `Closed);
    (Certify, `Certify);
  ]

let protocol_of db = function
  | `Open -> (Protocol.open_nested ~reg:(Database.spec_registry db) (), false)
  | `Flat -> (Protocol.flat_2pl ~reg:(Database.spec_registry db) (), false)
  | `Closed -> (Protocol.closed_nested ~reg:(Database.spec_registry db) (), false)
  | `Certify -> (Protocol.unlocked (), true)

let run_mode db mode txns ~seed =
  let protocol, certify = protocol_of db mode in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.certify;
      Engine.strategy = Engine.Random_pick (Rng.create ~seed);
      Engine.max_restarts = 40;
    }
  in
  Engine.run ~config db ~protocol txns

let test_banking_matrix () =
  List.iter
    (fun (label, mode) ->
      let name =
        match label with Locking l -> l | Certify -> "certify"
      in
      for seed = 1 to 3 do
        let p = { Banking.default_params with Banking.n_txns = 5 } in
        let db, counters = Banking.setup ~semantics:`Rw p in
        let txns = Banking.transactions ~rng:(Rng.create ~seed) p in
        let out = run_mode db mode txns ~seed:(seed * 11) in
        check_bool
          (Printf.sprintf "banking/%s/%d all committed" name seed)
          true
          (List.length out.Engine.committed = 5);
        check_bool
          (Printf.sprintf "banking/%s/%d total" name seed)
          true
          (Banking.total_balance counters
          = p.Banking.accounts * p.Banking.initial);
        check_bool
          (Printf.sprintf "banking/%s/%d history" name seed)
          true
          (History.validate out.Engine.history = Ok ()
          && Serializability.oo_serializable out.Engine.history)
      done)
    modes

let test_encyclopedia_matrix () =
  List.iter
    (fun (label, mode) ->
      let name = match label with Locking l -> l | Certify -> "certify" in
      let seed = 21 in
      let p =
        {
          Enc_workload.default_params with
          Enc_workload.n_txns = 4;
          ops_per_txn = 2;
          preload = 20;
        }
      in
      let db, enc, txns = Enc_workload.setup ~rng:(Rng.create ~seed) p in
      let out = run_mode db mode txns ~seed:(seed * 3) in
      check_bool
        (Printf.sprintf "enc/%s committed" name)
        true
        (List.length out.Engine.committed = 4);
      check_bool
        (Printf.sprintf "enc/%s history" name)
        true
        (History.validate out.Engine.history = Ok ()
        && Serializability.oo_serializable out.Engine.history);
      (* the structure stays consistent regardless of protocol *)
      let s = Encyclopedia.structure enc in
      check_bool
        (Printf.sprintf "enc/%s keys >= preload" name)
        true
        (s.Encyclopedia.keys >= 20))
    modes

let test_inventory_matrix () =
  List.iter
    (fun (label, mode) ->
      let name = match label with Locking l -> l | Certify -> "certify" in
      let seed = 31 in
      let db = Database.create () in
      let inv, txns =
        Inventory.setup ~rng:(Rng.create ~seed) Inventory.default_params db
      in
      let out = run_mode db mode txns ~seed:(seed * 7) in
      check_bool
        (Printf.sprintf "inv/%s committed" name)
        true
        (List.length out.Engine.committed
        = Inventory.default_params.Inventory.n_txns);
      (* conservation: every accepted order moved stock into the queue *)
      let p = Inventory.default_params in
      let remaining =
        List.init p.Inventory.products (Inventory.stock_level inv)
        |> List.fold_left ( + ) 0
      in
      let sold = (p.Inventory.products * p.Inventory.initial_stock) - remaining in
      check_bool
        (Printf.sprintf "inv/%s stock moved matches queue" name)
        true
        (sold = p.Inventory.qty * Inventory.pending_orders inv);
      check_bool
        (Printf.sprintf "inv/%s serializable" name)
        true
        (Serializability.oo_serializable out.Engine.history))
    modes

let suites =
  [
    ( "matrix",
      [
        Alcotest.test_case "banking x protocols" `Quick test_banking_matrix;
        Alcotest.test_case "encyclopedia x protocols" `Quick
          test_encyclopedia_matrix;
        Alcotest.test_case "inventory x protocols" `Quick test_inventory_matrix;
      ] );
  ]
