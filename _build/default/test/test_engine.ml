(* Integration tests for the execution engine: fibers, locking, undo,
   compensation, deadlock resolution, history recording. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let o = Obj_id.v

(* A register: a primitive cell with read/write and undo. *)
let register_cell db name init =
  let state = ref init in
  let read _ _ = Value.int !state in
  let write ctx args =
    match args with
    | [ Value.Int v ] ->
        let old = !state in
        Runtime.on_undo ctx (fun () -> state := old);
        state := v;
        Value.unit
    | _ -> invalid_arg "write"
  in
  Database.register db (o name)
    ~spec:(Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ])
    [ ("read", Database.primitive read); ("write", Database.primitive write) ];
  state

(* A counter whose incr is a composite method over a register, with
   commuting increments and a compensating decrement. *)
let register_counter db name cell_name =
  let incr ctx _args =
    let v = Value.to_int_exn (Runtime.call ctx (o cell_name) "read" []) in
    ignore (Runtime.call ctx (o cell_name) "write" [ Value.int (v + 1) ]);
    Value.unit
  in
  let decr ctx _args =
    let v = Value.to_int_exn (Runtime.call ctx (o cell_name) "read" []) in
    ignore (Runtime.call ctx (o cell_name) "write" [ Value.int (v - 1) ]);
    Value.unit
  in
  let compensate _args _result =
    Database.Inverse { Runtime.target = o name; meth_name = "decr"; args = [] }
  in
  Database.register db (o name)
    ~spec:(Commutativity.of_commute_matrix ~name:"counter" [ ("incr", "incr") ])
    [
      ("incr", Database.composite ~compensate incr);
      ("decr", Database.composite decr);
    ]

let test_single_transaction () =
  let db = Database.create () in
  let cell = register_cell db "R" 0 in
  register_counter db "C" "R";
  let body ctx =
    ignore (Runtime.call ctx (o "C") "incr" []);
    ignore (Runtime.call ctx (o "C") "incr" []);
    Value.unit
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol [ (1, "t1", body) ] in
  Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
  check_int "state" 2 !cell;
  check_bool "history valid" true (History.validate out.Engine.history = Ok ());
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_concurrent_commuting_increments () =
  let db = Database.create () in
  let cell = register_cell db "R" 0 in
  register_counter db "C" "R";
  let body ctx =
    ignore (Runtime.call ctx (o "C") "incr" []);
    Value.unit
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out =
    Engine.run db ~protocol
      [ (1, "t1", body); (2, "t2", body); (3, "t3", body) ]
  in
  check_int "all committed" 3 (List.length out.Engine.committed);
  check_int "state" 3 !cell;
  check_bool "history valid" true (History.validate out.Engine.history = Ok ());
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_flat_2pl_serializes () =
  let db = Database.create () in
  let cell = register_cell db "R" 0 in
  register_counter db "C" "R";
  let body ctx =
    ignore (Runtime.call ctx (o "C") "incr" []);
    Value.unit
  in
  let protocol = Protocol.flat_2pl ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol [ (1, "t1", body); (2, "t2", body) ] in
  check_int "all committed" 2 (List.length out.Engine.committed);
  check_int "state" 2 !cell;
  check_bool "conventional-serializable" true
    (Baselines.conventional_serializable out.Engine.history)

let test_explicit_abort_restores_state () =
  let db = Database.create () in
  let cell = register_cell db "R" 10 in
  let body ctx =
    ignore (Runtime.call ctx (o "R") "write" [ Value.int 99 ]);
    Runtime.abort "changed my mind"
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol [ (1, "t1", body) ] in
  check_int "no commits" 0 (List.length out.Engine.committed);
  check_int "aborted" 1 (List.length out.Engine.aborted);
  check_int "state restored" 10 !cell;
  (* empty history is fine *)
  check_bool "history valid" true (History.validate out.Engine.history = Ok ())

let test_compensation_after_subcommit () =
  (* T1 increments (the subtransaction commits, releasing its page-level
     locks), then aborts: the counter must be compensated by decr, not by
     restoring the raw cell value (which may meanwhile have moved). *)
  let db = Database.create () in
  let cell = register_cell db "R" 0 in
  register_counter db "C" "R";
  let body ctx =
    ignore (Runtime.call ctx (o "C") "incr" []);
    Runtime.abort "after subcommit"
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol [ (1, "t1", body) ] in
  check_int "aborted" 1 (List.length out.Engine.aborted);
  check_int "compensated back to 0" 0 !cell;
  ignore out

let test_deadlock_resolution () =
  (* T1 writes A then B; T2 writes B then A, under flat 2PL with
     all-conflict semantics: a deadlock must be detected, one transaction
     restarted, and both must eventually commit. *)
  let db = Database.create () in
  let a = register_cell db "A" 0 in
  let b = register_cell db "B" 0 in
  let t1 ctx =
    ignore (Runtime.call ctx (o "A") "write" [ Value.int 1 ]);
    ignore (Runtime.call ctx (o "B") "write" [ Value.int 1 ]);
    Value.unit
  in
  let t2 ctx =
    ignore (Runtime.call ctx (o "B") "write" [ Value.int 2 ]);
    ignore (Runtime.call ctx (o "A") "write" [ Value.int 2 ]);
    Value.unit
  in
  let protocol = Protocol.flat_2pl ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol [ (1, "t1", t1); (2, "t2", t2) ] in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_bool "a deadlock was broken" true
    (List.assoc "deadlocks" out.Engine.metrics > 0
    || List.assoc "restarts" out.Engine.metrics > 0);
  (* the final state is one of the two serial outcomes *)
  check_bool "serial outcome" true
    ((!a, !b) = (1, 1) || (!a, !b) = (2, 2) || (!a, !b) = (1, 2) || (!a, !b) = (2, 1));
  check_bool "conventional-serializable" true
    (Baselines.conventional_serializable out.Engine.history)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_primitive_cannot_call () =
  let db = Database.create () in
  let bad ctx _args = Runtime.call ctx (o "X") "read" [] in
  Database.register db (o "Bad") ~spec:Commutativity.all_conflict
    [ ("boom", Database.primitive bad) ];
  let body ctx = Runtime.call ctx (o "Bad") "boom" [] in
  let protocol = Protocol.unlocked () in
  let out = Engine.run db ~protocol [ (1, "t1", body) ] in
  check_int "aborted" 1 (List.length out.Engine.aborted);
  check_bool "reason mentions the call" true
    (match out.Engine.aborted with
    | [ (_, reason) ] -> contains reason "issued a call"
    | _ -> false)

let test_unknown_targets () =
  let db = Database.create () in
  ignore (register_cell db "R" 0);
  let protocol = Protocol.unlocked () in
  let out1 =
    Engine.run db ~protocol
      [ (1, "t1", fun ctx -> Runtime.call ctx (o "Nowhere") "read" []) ]
  in
  check_bool "unknown object aborts" true
    (match out1.Engine.aborted with
    | [ (1, reason) ] -> contains reason "unknown object"
    | _ -> false);
  let out2 =
    Engine.run db ~protocol
      [ (2, "t2", fun ctx -> Runtime.call ctx (o "R") "frobnicate" []) ]
  in
  check_bool "unknown method aborts" true
    (match out2.Engine.aborted with
    | [ (2, reason) ] -> contains reason "no method"
    | _ -> false)

let test_random_strategy_deterministic () =
  (* the same seed must give the same execution *)
  let run seed =
    let db = Database.create () in
    let _cell = register_cell db "R" 0 in
    register_counter db "C" "R";
    let body ctx =
      ignore (Runtime.call ctx (o "C") "incr" []);
      Value.unit
    in
    let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
    let config =
      {
        (Engine.default_config protocol) with
        Engine.strategy = Engine.Random_pick (Rng.create ~seed);
      }
    in
    let out =
      Engine.run ~config db ~protocol
        [ (1, "t1", body); (2, "t2", body); (3, "t3", body) ]
    in
    List.map Action_id.to_string (History.order out.Engine.history)
  in
  Alcotest.(check (list string)) "same seed, same order" (run 42) (run 42);
  (* all three increments commit: two primitives each *)
  check_int "all runs commit fully" 6 (List.length (run 7))

let test_unlocked_can_violate () =
  (* without locks, interleaved read-modify-write increments can lose an
     update; the checker must catch it when it happens.  We only assert
     agreement between the final counter value and the verdict. *)
  let db = Database.create () in
  let cell = register_cell db "R" 0 in
  register_counter db "C" "R";
  let body ctx =
    ignore (Runtime.call ctx (o "C") "incr" []);
    Value.unit
  in
  let protocol = Protocol.unlocked () in
  let out = Engine.run db ~protocol [ (1, "t1", body); (2, "t2", body) ] in
  check_int "committed" 2 (List.length out.Engine.committed);
  let serializable = Serializability.oo_serializable out.Engine.history in
  if !cell <> 2 then check_bool "lost update detected" false serializable

let test_metrics_exposed () =
  let db = Database.create () in
  ignore (register_cell db "R" 0);
  let protocol = Protocol.flat_2pl ~reg:(Database.spec_registry db) () in
  let body ctx =
    ignore (Runtime.call ctx (o "R") "write" [ Value.int 5 ]);
    Value.unit
  in
  let out = Engine.run db ~protocol [ (1, "t1", body); (2, "t2", body) ] in
  check_int "commits metric" 2 (List.assoc "commits" out.Engine.metrics);
  check_bool "lock requests counted" true
    (List.assoc "lock.requests" out.Engine.metrics >= 2)

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "single transaction" `Quick test_single_transaction;
        Alcotest.test_case "concurrent commuting increments" `Quick
          test_concurrent_commuting_increments;
        Alcotest.test_case "flat 2PL serializes" `Quick test_flat_2pl_serializes;
        Alcotest.test_case "explicit abort restores state" `Quick
          test_explicit_abort_restores_state;
        Alcotest.test_case "compensation after subcommit" `Quick
          test_compensation_after_subcommit;
        Alcotest.test_case "deadlock resolution" `Quick test_deadlock_resolution;
        Alcotest.test_case "primitive cannot call" `Quick test_primitive_cannot_call;
        Alcotest.test_case "unknown targets abort" `Quick test_unknown_targets;
        Alcotest.test_case "random strategy deterministic" `Quick
          test_random_strategy_deterministic;
        Alcotest.test_case "unlocked violations detected" `Quick
          test_unlocked_can_violate;
        Alcotest.test_case "metrics exposed" `Quick test_metrics_exposed;
      ] );
  ]
