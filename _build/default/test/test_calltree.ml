(* Unit tests for call trees (oo-transactions, Def. 2). *)

open Ooser_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let o name = Obj_id.v name

(* Fig. 5's transaction t1: root with children a11 (two children a111 with
   two primitive children, a112) and a12 (primitive). *)
let fig5 () =
  Call_tree.Build.(
    top ~n:1
      [
        call (o "O1") "a1"
          [
            call (o "O2") "a11" [ call (o "O3") "p1" []; call (o "O3") "p2" [] ];
            call (o "O1") "a12" [];
          ];
        call (o "O4") "a2" [];
      ])

let test_structure () =
  let t = fig5 () in
  check_int "size (incl. root)" 7 (Call_tree.size t);
  check_int "height" 3 (Call_tree.height t);
  check_int "primitives" 4 (List.length (Call_tree.primitives t));
  check_bool "validates" true (Call_tree.validate t = Ok ())

let test_find_and_caller () =
  let t = fig5 () in
  let id = Action_id.v ~top:1 ~path:[ 1; 1; 2 ] in
  (match Call_tree.find t id with
  | Some node ->
      Alcotest.(check string) "method" "p2" (Action.meth (Call_tree.act node))
  | None -> Alcotest.fail "find failed");
  let cm = Call_tree.caller_map t in
  check_bool "caller of a1.1.1.2 is a1.1.1" true
    (match Action_id.Map.find_opt id cm with
    | Some p -> Action_id.equal p (Action_id.v ~top:1 ~path:[ 1; 1 ])
    | None -> false);
  check_bool "root not in caller map" true
    (Action_id.Map.find_opt (Action_id.root 1) cm = None)

let test_program_order () =
  let t = fig5 () in
  let pairs = Call_tree.program_order_pairs t in
  let has a b =
    List.exists
      (fun (x, y) ->
        Action_id.equal x (Action_id.v ~top:1 ~path:a)
        && Action_id.equal y (Action_id.v ~top:1 ~path:b))
      pairs
  in
  (* a1 (path [1]) precedes a2 (path [2]); descendants inherit. *)
  check_bool "siblings ordered" true (has [ 1 ] [ 2 ]);
  check_bool "descendant ordered" true (has [ 1; 1; 1 ] [ 2 ]);
  check_bool "nested siblings" true (has [ 1; 1; 1 ] [ 1; 2 ]);
  check_bool "no reverse" false (has [ 2 ] [ 1 ]);
  (* leaves of the same parent are ordered by seq *)
  check_bool "primitive pair" true (has [ 1; 1; 1 ] [ 1; 1; 2 ])

let test_par_no_order () =
  let t =
    Call_tree.Build.(
      top ~n:2
        [
          call (o "A") "m" ~prec:[]
            [ call (o "B") "x" []; call (o "B") "y" [] ];
        ])
  in
  (* children of m carry no precedence, but top's children are seq — only
     one child, so no pairs from the root either *)
  let pairs = Call_tree.program_order_pairs t in
  check_int "no pairs" 0 (List.length pairs)

let test_validate_failures () =
  (* A cyclic precedence must be rejected. *)
  let act id obj meth =
    Action.v ~id ~obj ~meth ~process:(Process_id.main 1) ()
  in
  let root = Action_id.root 1 in
  let c1 = Action_id.child root 1 and c2 = Action_id.child root 2 in
  let bad_prec =
    Call_tree.v
      ~prec:[ (0, 1); (1, 0) ]
      (act root (o "S") "t")
      [
        Call_tree.v (act c1 (o "A") "x") [];
        Call_tree.v (act c2 (o "A") "y") [];
      ]
  in
  check_bool "cyclic precedence rejected" true
    (match Call_tree.validate bad_prec with Error _ -> true | Ok () -> false);
  let bad_range =
    Call_tree.v ~prec:[ (0, 5) ]
      (act root (o "S") "t")
      [ Call_tree.v (act c1 (o "A") "x") [] ]
  in
  check_bool "out-of-range precedence rejected" true
    (match Call_tree.validate bad_range with Error _ -> true | Ok () -> false);
  let bad_id =
    Call_tree.v
      (act root (o "S") "t")
      [ Call_tree.v (act (Action_id.child (Action_id.root 9) 1) (o "A") "x") [] ]
  in
  check_bool "inconsistent child id rejected" true
    (match Call_tree.validate bad_id with Error _ -> true | Ok () -> false)

let test_branches () =
  let t =
    Call_tree.Build.(
      top ~n:7
        [
          call (o "A") "m" ~branch:1 [];
          call (o "A") "n" ~branch:2 [];
        ])
  in
  match Call_tree.children t with
  | [ c1; c2 ] ->
      let p1 = Action.process (Call_tree.act c1) in
      let p2 = Action.process (Call_tree.act c2) in
      check_bool "different processes" false (Process_id.equal p1 p2);
      check_int "same top" (Process_id.top p1) (Process_id.top p2)
  | _ -> Alcotest.fail "expected two children"

let suites =
  [
    ( "call_tree",
      [
        Alcotest.test_case "structure of Fig. 5" `Quick test_structure;
        Alcotest.test_case "find and caller map" `Quick test_find_and_caller;
        Alcotest.test_case "program order pairs" `Quick test_program_order;
        Alcotest.test_case "parallel children unordered" `Quick test_par_no_order;
        Alcotest.test_case "validation failures" `Quick test_validate_failures;
        Alcotest.test_case "parallel branches get processes" `Quick test_branches;
      ] );
  ]
