(* End-to-end tests for the encyclopedia application (Fig. 2) executed by
   the engine under the concurrency control protocols. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let key i = Printf.sprintf "k%03d" i

let with_enc ?(fanout = 4) f =
  let db = Database.create () in
  let enc = Encyclopedia.create ~fanout db in
  f db enc

let open_protocol db = Protocol.open_nested ~reg:(Database.spec_registry db) ()
let flat_protocol db = Protocol.flat_2pl ~reg:(Database.spec_registry db) ()

let test_single_writer_then_read () =
  with_enc (fun db enc ->
      let body ctx =
        for i = 1 to 30 do
          Encyclopedia.insert enc ctx ~key:(key i) ~text:("text" ^ string_of_int i)
        done;
        Value.unit
      in
      let out = Engine.run db ~protocol:(open_protocol db) [ (1, "load", body) ] in
      Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
      check_bool "history valid" true (History.validate out.Engine.history = Ok ());
      let s = Encyclopedia.structure enc in
      check_int "keys" 30 s.Encyclopedia.keys;
      check_int "items" 30 s.Encyclopedia.items;
      check_bool "tree grew" true (s.Encyclopedia.height >= 2);
      (* read back in a second run *)
      let reader ctx =
        check_bool "found" true
          (Encyclopedia.search enc ctx ~key:(key 17) = Some "text17");
        check_bool "missing" true (Encyclopedia.search enc ctx ~key:"zzz" = None);
        Value.unit
      in
      let out2 = Engine.run db ~protocol:(open_protocol db) [ (2, "read", reader) ] in
      Alcotest.(check (list int)) "reader committed" [ 2 ] out2.Engine.committed)

let test_history_oo_serializable_single () =
  with_enc ~fanout:2 (fun db enc ->
      let body ctx =
        for i = 1 to 12 do
          Encyclopedia.insert enc ctx ~key:(key i) ~text:"t"
        done;
        Value.unit
      in
      let out = Engine.run db ~protocol:(open_protocol db) [ (1, "load", body) ] in
      Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
      check_bool "history valid" true (History.validate out.Engine.history = Ok ());
      let v = Serializability.check out.Engine.history in
      check_bool "oo-serializable" true v.Serializability.oo_serializable;
      (* root growth re-enters BpTree: the extension materialises a
         virtual object *)
      let ext = Extension.extend out.Engine.history in
      check_bool "virtual objects from grow" true
        (Extension.virtual_objects ext <> []))

let test_concurrent_inserts_different_keys () =
  with_enc (fun db enc ->
      let mk_body lo hi ctx =
        for i = lo to hi do
          Encyclopedia.insert enc ctx ~key:(key i) ~text:"x"
        done;
        Value.unit
      in
      let config =
        let p = open_protocol db in
        {
          (Engine.default_config p) with
          Engine.strategy = Engine.Random_pick (Rng.create ~seed:11);
        }
      in
      let out =
        Engine.run ~config db ~protocol:config.Engine.protocol
          [
            (1, "w1", mk_body 1 10);
            (2, "w2", mk_body 11 20);
            (3, "w3", mk_body 21 30);
          ]
      in
      check_int "all committed" 3 (List.length out.Engine.committed);
      check_bool "history valid" true (History.validate out.Engine.history = Ok ());
      check_bool "oo-serializable" true
        (Serializability.oo_serializable out.Engine.history);
      let s = Encyclopedia.structure enc in
      check_int "all keys present" 30 s.Encyclopedia.keys)

let test_concurrent_flat_2pl () =
  with_enc (fun db enc ->
      let mk_body lo hi ctx =
        for i = lo to hi do
          Encyclopedia.insert enc ctx ~key:(key i) ~text:"x"
        done;
        Value.unit
      in
      let p = flat_protocol db in
      let config =
        {
          (Engine.default_config p) with
          Engine.strategy = Engine.Random_pick (Rng.create ~seed:5);
        }
      in
      let out =
        Engine.run ~config db ~protocol:p
          [ (1, "w1", mk_body 1 8); (2, "w2", mk_body 9 16) ]
      in
      check_int "all committed" 2 (List.length out.Engine.committed);
      check_bool "conventional-serializable" true
        (Baselines.conventional_serializable out.Engine.history);
      let s = Encyclopedia.structure enc in
      check_int "all keys present" 16 s.Encyclopedia.keys)

let test_update_and_search () =
  with_enc (fun db enc ->
      let writer ctx =
        Encyclopedia.insert enc ctx ~key:"alpha" ~text:"one";
        Encyclopedia.insert enc ctx ~key:"beta" ~text:"two";
        check_bool "update hits" true
          (Encyclopedia.update enc ctx ~key:"alpha" ~text:"ONE");
        check_bool "update misses" false
          (Encyclopedia.update enc ctx ~key:"gamma" ~text:"?");
        Value.unit
      in
      let out = Engine.run db ~protocol:(open_protocol db) [ (1, "w", writer) ] in
      Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
      let reader ctx =
        check_bool "updated text" true
          (Encyclopedia.search enc ctx ~key:"alpha" = Some "ONE");
        Value.unit
      in
      ignore (Engine.run db ~protocol:(open_protocol db) [ (2, "r", reader) ]))

let test_read_seq_sees_all () =
  with_enc (fun db enc ->
      let writer ctx =
        for i = 1 to 5 do
          Encyclopedia.insert enc ctx ~key:(key i) ~text:("v" ^ string_of_int i)
        done;
        Value.unit
      in
      ignore (Engine.run db ~protocol:(open_protocol db) [ (1, "w", writer) ]);
      let seen = ref [] in
      let reader ctx =
        seen := Encyclopedia.read_seq enc ctx;
        Value.unit
      in
      ignore (Engine.run db ~protocol:(open_protocol db) [ (2, "r", reader) ]);
      Alcotest.(check (list string))
        "insertion order" [ "v1"; "v2"; "v3"; "v4"; "v5" ] !seen)

let test_read_seq_conflicts_with_insert () =
  (* the phantom: a readSeq and an insert in parallel must produce a
     dependency at the Enc level, and both orders are serializable *)
  with_enc (fun db enc ->
      let writer ctx =
        Encyclopedia.insert enc ctx ~key:"a" ~text:"1";
        Value.unit
      in
      let reader ctx =
        ignore (Encyclopedia.read_seq enc ctx);
        Value.unit
      in
      let out =
        Engine.run db ~protocol:(open_protocol db)
          [ (1, "w", writer); (2, "r", reader) ]
      in
      check_int "both committed" 2 (List.length out.Engine.committed);
      let sched = Schedule.compute out.Engine.history in
      let enc_sched = Schedule.find_exn sched (Encyclopedia.enc_object enc) in
      check_bool "Enc-level dependency between T1 and T2" true
        (Action.Rel.cardinal enc_sched.Schedule.txn_dep > 0);
      check_bool "oo-serializable" true
        (Serializability.oo_serializable out.Engine.history))

let test_abort_rolls_back_insert () =
  with_enc (fun db enc ->
      let body ctx =
        Encyclopedia.insert enc ctx ~key:"doomed" ~text:"x";
        Runtime.abort "no thanks"
      in
      let out = Engine.run db ~protocol:(open_protocol db) [ (1, "w", body) ] in
      check_int "aborted" 1 (List.length out.Engine.aborted);
      let reader ctx =
        check_bool "not found after abort" true
          (Encyclopedia.search enc ctx ~key:"doomed" = None);
        check_bool "readSeq empty" true (Encyclopedia.read_seq enc ctx = []);
        Value.unit
      in
      let out2 = Engine.run db ~protocol:(open_protocol db) [ (2, "r", reader) ] in
      Alcotest.(check (list int)) "reader committed" [ 2 ] out2.Engine.committed)

let test_page_colocation () =
  (* items live in the free slots of leaf pages: the number of pages is
     far below one-per-item *)
  with_enc ~fanout:8 (fun db enc ->
      let body ctx =
        for i = 1 to 16 do
          Encyclopedia.insert enc ctx ~key:(key i) ~text:"payload"
        done;
        Value.unit
      in
      ignore (Engine.run db ~protocol:(open_protocol db) [ (1, "w", body) ]);
      let s = Encyclopedia.structure enc in
      check_bool "items co-located with leaves" true
        (s.Encyclopedia.pages < s.Encyclopedia.items))

let suites =
  [
    ( "encyclopedia",
      [
        Alcotest.test_case "load and read back" `Quick test_single_writer_then_read;
        Alcotest.test_case "single history oo-serializable (grow/virtual)" `Quick
          test_history_oo_serializable_single;
        Alcotest.test_case "concurrent inserts, different keys" `Quick
          test_concurrent_inserts_different_keys;
        Alcotest.test_case "concurrent inserts under flat 2PL" `Quick
          test_concurrent_flat_2pl;
        Alcotest.test_case "update and search" `Quick test_update_and_search;
        Alcotest.test_case "readSeq order" `Quick test_read_seq_sees_all;
        Alcotest.test_case "readSeq conflicts with insert" `Quick
          test_read_seq_conflicts_with_insert;
        Alcotest.test_case "abort rolls back insert" `Quick
          test_abort_rolls_back_insert;
        Alcotest.test_case "item/page co-location" `Quick test_page_colocation;
      ] );
  ]
