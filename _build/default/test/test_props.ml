(* Cross-cutting property tests tying the checkers, the protocols and the
   engine together:

   - serial histories satisfy every criterion;
   - conventional serializability implies oo-serializability (the paper's
     "lower rate of conflicting accesses" direction: oo accepts a
     superset);
   - multi-level serializability and oo-serializability agree on the
     layered systems the generator produces;
   - histories produced by the open-nested protocol are always
     oo-serializable; histories produced by flat 2PL are always
     conventionally serializable (and hence oo-serializable). *)

open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let params ~n_txns ~p_commute =
  {
    Random_schedules.default_params with
    Random_schedules.n_txns;
    p_commute;
  }

let gen_seed = QCheck2.Gen.int_range 1 1_000_000

let prop_serial_accepted =
  QCheck2.Test.make ~name:"serial histories accepted by all criteria" ~count:100
    gen_seed (fun seed ->
      let p = params ~n_txns:3 ~p_commute:0.5 in
      let tops, commut = Random_schedules.system ~seed p in
      let h = History.of_serial ~tops ~commut in
      Serializability.oo_serializable h
      && Baselines.conventional_serializable h
      && Baselines.multilevel_serializable h)

let prop_conventional_implies_oo =
  QCheck2.Test.make ~name:"conventional-SR implies oo-SR" ~count:150 gen_seed
    (fun seed ->
      let p = params ~n_txns:3 ~p_commute:0.4 in
      let h = Random_schedules.history ~seed p in
      (not (Baselines.conventional_serializable h))
      || Serializability.oo_serializable h)

let prop_multilevel_included =
  (* the paper's claim: "object-oriented serializability includes
     multi-layer serializability" — every ml-serializable layered history
     is oo-serializable; oo may accept strictly more because commuting
     objects stop the inheritance at every object, not per level *)
  QCheck2.Test.make ~name:"multilevel-SR implies oo-SR on layered systems"
    ~count:150 gen_seed (fun seed ->
      let p = params ~n_txns:3 ~p_commute:0.3 in
      let h = Random_schedules.history ~seed p in
      Baselines.is_layered h
      && ((not (Baselines.multilevel_serializable h))
         || Serializability.oo_serializable h))

let prop_conventional_implies_multilevel =
  QCheck2.Test.make ~name:"conventional-SR implies multilevel-SR" ~count:150
    gen_seed (fun seed ->
      let p = params ~n_txns:3 ~p_commute:0.3 in
      let h = Random_schedules.history ~seed p in
      (not (Baselines.conventional_serializable h))
      || Baselines.multilevel_serializable h)

let prop_commutativity_monotone =
  (* more commutativity never turns an accepted schedule into a rejected
     one: the sampled pair_commutes is threshold-monotone in p_commute, so
     dependencies only shrink *)
  QCheck2.Test.make ~name:"oo acceptance is monotone in commutativity"
    ~count:100 gen_seed (fun seed ->
      let mk p_commute =
        let p = params ~n_txns:3 ~p_commute in
        let tops, commut = Random_schedules.system ~seed p in
        let rng = Rng.create ~seed:(seed * 7) in
        History.v ~tops
          ~order:(Random_schedules.random_order rng tops)
          ~commut
      in
      let low = mk 0.2 and high = mk 0.8 in
      (not (Serializability.oo_serializable low))
      || Serializability.oo_serializable high)

let prop_oo_witness_exists =
  QCheck2.Test.make ~name:"accepted schedules have a serial witness" ~count:100
    gen_seed (fun seed ->
      let p = params ~n_txns:4 ~p_commute:0.6 in
      let h = Random_schedules.history ~seed p in
      let v = Serializability.check h in
      (not v.Serializability.oo_serializable)
      || (match v.Serializability.witness with
         | Some w -> List.length w = 4
         | None -> false))

(* -- protocol-produced histories --------------------------------------------- *)

let run_banking ~semantics ~protocol_of ~seed =
  let p = { Banking.default_params with Banking.n_txns = 5 } in
  let db, counters = Banking.setup ~semantics p in
  let rng = Rng.create ~seed in
  let txns = Banking.transactions ~rng p in
  let protocol = protocol_of (Database.spec_registry db) in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:(seed + 1));
    }
  in
  let out = Engine.run ~config db ~protocol txns in
  (out, counters, p)

let prop_open_nested_histories_oo_serializable =
  QCheck2.Test.make ~name:"open-nested protocol output is oo-serializable"
    ~count:40 gen_seed (fun seed ->
      let out, counters, p =
        run_banking ~semantics:`Rw
          ~protocol_of:(fun reg -> Protocol.open_nested ~reg ())
          ~seed
      in
      History.validate out.Engine.history = Ok ()
      && Serializability.oo_serializable out.Engine.history
      && Banking.total_balance counters = p.Banking.accounts * p.Banking.initial)

let prop_flat_histories_conventional =
  QCheck2.Test.make ~name:"flat 2PL output is conventionally serializable"
    ~count:40 gen_seed (fun seed ->
      let out, _, _ =
        run_banking ~semantics:`Rw
          ~protocol_of:(fun reg -> Protocol.flat_2pl ~reg ())
          ~seed
      in
      Baselines.conventional_serializable out.Engine.history
      && Serializability.oo_serializable out.Engine.history)

let prop_escrow_protocol_safe =
  QCheck2.Test.make ~name:"escrow semantics never corrupt the total" ~count:40
    gen_seed (fun seed ->
      let out, counters, p =
        run_banking ~semantics:`Escrow
          ~protocol_of:(fun reg -> Protocol.open_nested ~reg ())
          ~seed
      in
      ignore out;
      Banking.total_balance counters = p.Banking.accounts * p.Banking.initial)

let prop_enc_open_nested_oo =
  QCheck2.Test.make ~name:"encyclopedia under open nesting is oo-serializable"
    ~count:15 gen_seed (fun seed ->
      let rng = Rng.create ~seed in
      let p =
        {
          Enc_workload.default_params with
          Enc_workload.n_txns = 4;
          ops_per_txn = 3;
          preload = 20;
        }
      in
      let db, _enc, txns = Enc_workload.setup ~rng p in
      let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
      let config =
        {
          (Engine.default_config protocol) with
          Engine.strategy = Engine.Random_pick (Rng.create ~seed:(seed * 3));
        }
      in
      let out = Engine.run ~config db ~protocol txns in
      History.validate out.Engine.history = Ok ()
      && Serializability.oo_serializable out.Engine.history)

let suites =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest prop_serial_accepted;
        QCheck_alcotest.to_alcotest prop_conventional_implies_oo;
        QCheck_alcotest.to_alcotest prop_multilevel_included;
        QCheck_alcotest.to_alcotest prop_conventional_implies_multilevel;
        QCheck_alcotest.to_alcotest prop_commutativity_monotone;
        QCheck_alcotest.to_alcotest prop_oo_witness_exists;
        QCheck_alcotest.to_alcotest prop_open_nested_histories_oo_serializable;
        QCheck_alcotest.to_alcotest prop_flat_histories_conventional;
        QCheck_alcotest.to_alcotest prop_escrow_protocol_safe;
        QCheck_alcotest.to_alcotest prop_enc_open_nested_oo;
      ] );
  ]
