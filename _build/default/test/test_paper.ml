(* The paper's own worked examples, reproduced exactly with the paper's
   object names: Example 1 / Fig. 4, Example 2 / Fig. 5, Example 3 /
   Fig. 6, Example 4 / Figs. 7-8.  These are the ground truth the
   implementation must match. *)

open Ooser_core

let check_bool = Alcotest.(check bool)
let o = Obj_id.v
let aid top path = Ids.Action_id.v ~top ~path

(* Commutativity of the encyclopedia objects, per §2 and Example 1. *)
let paper_registry =
  let keyed_insert_search =
    Commutativity.by_key ~key_of:Commutativity.first_arg
      (Commutativity.predicate ~name:"keyed" (fun a b ->
           match (Action.meth a, Action.meth b) with
           | "search", "search" -> true
           | _ -> false))
  in
  let enc_spec =
    Commutativity.predicate ~name:"enc" (fun a b ->
        match (Action.meth a, Action.meth b) with
        | "readSeq", "readSeq" -> true
        | "readSeq", _ | _, "readSeq" -> false
        | _ -> Commutativity.test keyed_insert_search a b)
  in
  let linkedlist_spec =
    Commutativity.predicate ~name:"linkedlist" (fun a b ->
        match (Action.meth a, Action.meth b) with
        | "append", "append" -> true
        | _ -> false)
  in
  Commutativity.fixed
    [
      ("Page4712",
       Commutativity.rw ~reads:[ "read" ] ~writes:[ "readx"; "write"; "insert" ]);
      ("Leaf11", keyed_insert_search);
      ("BpTree", keyed_insert_search);
      ("Item8", Commutativity.rw ~reads:[ "read" ] ~writes:[ "create"; "update" ]);
      ("Item9", Commutativity.rw ~reads:[ "read" ] ~writes:[ "create"; "update" ]);
      ("LinkedList", linkedlist_spec);
      ("Enc", enc_spec);
    ]

let k s = [ Value.str s ]

(* -- Example 1 / Fig. 4 -------------------------------------------------------- *)

(* T: Enc.insert(key) -> BpTree.insert(key) -> Leaf11.insert(key) ->
   Page4712.readx; Page4712.write *)
let insert_txn n key =
  Call_tree.Build.(
    top ~n
      [
        call (o "Enc") "insert" ~args:(k key)
          [
            call (o "BpTree") "insert" ~args:(k key)
              [
                call (o "Leaf11") "insert" ~args:(k key)
                  [
                    call (o "Page4712") "readx" [];
                    call (o "Page4712") "write" [];
                  ];
              ];
          ];
      ])

let search_txn n key =
  Call_tree.Build.(
    top ~n
      [
        call (o "Enc") "search" ~args:(k key)
          [
            call (o "BpTree") "search" ~args:(k key)
              [
                call (o "Leaf11") "search" ~args:(k key)
                  [ call (o "Page4712") "read" [] ];
              ];
          ];
      ])

(* leaf-level page actions of the insert transaction [n] *)
let ins_pages n = [ aid n [ 1; 1; 1; 1 ]; aid n [ 1; 1; 1; 2 ] ]
let search_page n = [ aid n [ 1; 1; 1; 1 ] ]

let test_example1_different_keys () =
  (* T1 inserts DBMS, T2 inserts DBS; their page operations conflict on
     Page4712 but the leaf-level inserts commute: the dependency is noted
     at Leaf11 and inherited no further (Fig. 4, left). *)
  let t1 = insert_txn 1 "DBMS" and t2 = insert_txn 2 "DBS" in
  let h =
    History.v ~tops:[ t1; t2 ]
      ~order:(ins_pages 1 @ ins_pages 2)
      ~commut:paper_registry
  in
  check_bool "well-formed" true (History.validate h = Ok ());
  let sched = Schedule.compute h in
  let page = Schedule.find_exn sched (o "Page4712") in
  check_bool "dependency at Page4712" true
    (Action.Rel.mem (aid 1 [ 1; 1; 1; 2 ]) (aid 2 [ 1; 1; 1; 1 ])
       page.Schedule.txn_dep
    || Action.Rel.cardinal page.Schedule.txn_dep > 0);
  (* the transaction dependency at the page is between the two leaf
     inserts *)
  check_bool "inherited to Leaf11 actions" true
    (Action.Rel.mem (aid 1 [ 1; 1; 1 ]) (aid 2 [ 1; 1; 1 ]) page.Schedule.txn_dep);
  let leaf = Schedule.find_exn sched (o "Leaf11") in
  check_bool "noted as action dependency at Leaf11" true
    (Action.Rel.mem (aid 1 [ 1; 1; 1 ]) (aid 2 [ 1; 1; 1 ]) leaf.Schedule.act_dep);
  (* the inserts commute: inheritance stops, nothing at BpTree *)
  check_bool "no transaction dependency at Leaf11" true
    (Action.Rel.is_empty leaf.Schedule.txn_dep);
  let bptree = Schedule.find_exn sched (o "BpTree") in
  check_bool "nothing at BpTree" true
    (Action.Rel.is_empty bptree.Schedule.txn_dep
    && Action.Rel.is_empty bptree.Schedule.act_dep);
  check_bool "oo-serializable" true
    (Serializability.check h).Serializability.oo_serializable

let test_example1_same_key () =
  (* T3 inserts DBS, T4 searches DBS: the page dependency is inherited all
     the way to the top-level transactions (Fig. 4, right). *)
  let t3 = insert_txn 3 "DBS" and t4 = search_txn 4 "DBS" in
  let h =
    History.v ~tops:[ t3; t4 ]
      ~order:(ins_pages 3 @ search_page 4)
      ~commut:paper_registry
  in
  let sched = Schedule.compute h in
  let leaf = Schedule.find_exn sched (o "Leaf11") in
  check_bool "conflict at Leaf11 inherited" true
    (Action.Rel.mem (aid 3 [ 1; 1 ]) (aid 4 [ 1; 1 ]) leaf.Schedule.txn_dep);
  let bptree = Schedule.find_exn sched (o "BpTree") in
  check_bool "conflict at BpTree inherited" true
    (Action.Rel.mem (aid 3 [ 1 ]) (aid 4 [ 1 ]) bptree.Schedule.txn_dep);
  let enc = Schedule.find_exn sched (o "Enc") in
  check_bool "dependency reaches the tops" true
    (Action.Rel.mem (aid 3 []) (aid 4 []) enc.Schedule.txn_dep);
  let v = Serializability.check h in
  check_bool "oo-serializable" true v.Serializability.oo_serializable;
  check_bool "witness T3 before T4" true
    (v.Serializability.witness = Some [ aid 3 []; aid 4 [] ])

(* -- Example 2 / Fig. 5: the shape of an oo-transaction ------------------------- *)

let test_example2_tree_shape () =
  let t =
    Call_tree.Build.(
      top ~n:1
        [
          call (o "O1") "a1"
            [
              call (o "O2") "a11"
                [ call (o "O3") "a111" []; call (o "O3") "a112" [] ];
              call (o "O1") "a12" [];
            ];
          call (o "O4") "a2" [ call (o "O5") "a21" [] ];
        ])
  in
  check_bool "valid" true (Call_tree.validate t = Ok ());
  Alcotest.(check int) "primitive count" 4 (List.length (Call_tree.primitives t));
  (* precedence: a11 before a12 (left-to-right order of arcs) *)
  let pairs = Call_tree.program_order_pairs t in
  check_bool "a111 precedes a112" true
    (List.exists
       (fun (x, y) ->
         Ids.Action_id.equal x (aid 1 [ 1; 1; 1 ])
         && Ids.Action_id.equal y (aid 1 [ 1; 1; 2 ]))
       pairs)

(* -- Example 3 / Fig. 6: breaking the call cycle --------------------------------- *)

let test_example3_extension () =
  (* a11 on O1 calls (indirectly) a112 on O1: the extension moves a112 to
     the virtual object O1' and duplicates the other O1 actions there *)
  let t1 =
    Call_tree.Build.(
      top ~n:1
        [
          call (o "O1") "a1"
            [ call (o "O2") "a11" [ call (o "O1") "a112" [] ] ];
        ])
  in
  let t2 =
    Call_tree.Build.(top ~n:2 [ call (o "O1") "b" [] ])
  in
  let h =
    History.v ~tops:[ t1; t2 ]
      ~order:[ aid 1 [ 1; 1; 1 ]; aid 2 [ 1 ] ]
      ~commut:(Commutativity.uniform Commutativity.all_conflict)
  in
  let ext = Extension.extend h in
  let v_o1 = Obj_id.virtualize (o "O1") ~rank:1 in
  check_bool "O1' created" true
    (List.exists (Obj_id.equal v_o1) (Extension.virtual_objects ext));
  let acts = Extension.acts_of ext v_o1 in
  check_bool "a112 moved to O1'" true (Ids.Action_id.Set.mem (aid 1 [ 1; 1; 1 ]) acts);
  check_bool "a112 no longer on O1" true
    (not (Ids.Action_id.Set.mem (aid 1 [ 1; 1; 1 ]) (Extension.acts_of ext (o "O1"))));
  (* T2's action b is virtually duplicated onto O1', called by b *)
  let b' = Ids.Action_id.virtualize (aid 2 [ 1 ]) ~rank:1 in
  check_bool "b duplicated as b'" true (Ids.Action_id.Set.mem b' acts);
  check_bool "b' called by b" true
    (Extension.caller_of ext b' = Some (aid 2 [ 1 ]));
  (* the dependency between a112 and b' at O1' is inherited to O1 via the
     call edge: the whole history is still oo-serializable *)
  check_bool "oo-serializable" true (Serializability.oo_serializable h)

(* -- Example 4 / Figs. 7-8 -------------------------------------------------------- *)

(* T1: Enc.insert(DBMS)   = BpTree path + Item8.create + LinkedList.append
   T2: Enc.update(DBMS)   = BpTree.search path + Item8.update
   T3: Enc.insert(DBS)    = BpTree path + Item9.create + LinkedList.append
   T4: Enc.readSeq        = LinkedList.readSeq -> Item8.read, Item9.read

   Item data are co-located with the leaf entries on Page4712 (Fig. 7). *)
let example4_trees () =
  let open Call_tree.Build in
  let t1 =
    top ~n:1
      [
        call (o "Enc") "insert" ~args:(k "DBMS")
          [
            call (o "BpTree") "insert" ~args:(k "DBMS")
              [
                call (o "Leaf11") "insert" ~args:(k "DBMS")
                  [ call (o "Page4712") "readx" []; call (o "Page4712") "write" [] ];
              ];
            call (o "Item8") "create" [ call (o "Page4712") "insert" [] ];
            call (o "LinkedList") "append" [];
          ];
      ]
  in
  let t2 =
    top ~n:2
      [
        call (o "Enc") "update" ~args:(k "DBMS")
          [
            call (o "BpTree") "search" ~args:(k "DBMS")
              [
                call (o "Leaf11") "search" ~args:(k "DBMS")
                  [ call (o "Page4712") "read" [] ];
              ];
            call (o "Item8") "update" [ call (o "Page4712") "write" [] ];
          ];
      ]
  in
  let t3 =
    top ~n:3
      [
        call (o "Enc") "insert" ~args:(k "DBS")
          [
            call (o "BpTree") "insert" ~args:(k "DBS")
              [
                call (o "Leaf11") "insert" ~args:(k "DBS")
                  [ call (o "Page4712") "readx" []; call (o "Page4712") "write" [] ];
              ];
            call (o "Item9") "create" [ call (o "Page4712") "insert" [] ];
            call (o "LinkedList") "append" [];
          ];
      ]
  in
  let t4 =
    top ~n:4
      [
        call (o "Enc") "readSeq"
          [
            call (o "LinkedList") "readSeq"
              [
                call (o "Item8") "read" [ call (o "Page4712") "read" [] ];
                call (o "Item9") "read" [ call (o "Page4712") "read" [] ];
              ];
          ];
      ]
  in
  (t1, t2, t3, t4)

let serial_order tops = List.concat_map History.serial_primitives tops

let test_example4_dependency_table () =
  (* Fig. 8: where each dependency is recorded, run serially T1 T2 T3 T4 *)
  let t1, t2, t3, t4 = example4_trees () in
  let tops = [ t1; t2; t3; t4 ] in
  let h = History.v ~tops ~order:(serial_order tops) ~commut:paper_registry in
  check_bool "well-formed" true (History.validate h = Ok ());
  let sched = Schedule.compute h in
  let dep obj x y =
    Action.Rel.mem x y (Schedule.find_exn sched (o obj)).Schedule.txn_dep
  in
  (* Leaf11: insert(DBMS)1 -> search(DBMS)2 recorded (same key);
     insert(DBMS)1 vs insert(DBS)3 NOT recorded (commute) *)
  check_bool "Leaf11: T1 insert vs T2 search" true
    (dep "Leaf11" (aid 1 [ 1; 1 ]) (aid 2 [ 1; 1 ]));
  check_bool "Leaf11: inserts of different keys stop" false
    (dep "Leaf11" (aid 1 [ 1; 1 ]) (aid 3 [ 1; 1 ]));
  (* BpTree: insert(DBMS)1 -> search(DBMS)2 *)
  check_bool "BpTree: T1 vs T2" true (dep "BpTree" (aid 1 [ 1 ]) (aid 2 [ 1 ]));
  (* Enc: T1 -> T2 (same key), T1 -> readSeq, T3 -> readSeq; T1 vs T3 free *)
  check_bool "Enc: T1 -> T2" true (dep "Enc" (aid 1 []) (aid 2 []));
  check_bool "Enc: T1 -> readSeq(T4)" true (dep "Enc" (aid 1 []) (aid 4 []));
  check_bool "Enc: T3 -> readSeq(T4)" true (dep "Enc" (aid 3 []) (aid 4 []));
  check_bool "Enc: T1 vs T3 commute" false (dep "Enc" (aid 1 []) (aid 3 []));
  (* LinkedList: appends commute, readSeq depends on both *)
  check_bool "LinkedList: T1 append -> T4 readSeq" true
    (dep "LinkedList" (aid 1 [ 1 ]) (aid 4 [ 1 ]));
  check_bool "LinkedList: appends commute" false
    (dep "LinkedList" (aid 1 [ 1 ]) (aid 3 [ 1 ]));
  (* Item8: the update(T2) / read(T4) dependency relates callers on
     different objects (Enc.update vs LinkedList.readSeq): recorded as an
     ADDED dependency at both Enc and LinkedList (Def. 15) *)
  check_bool "Item8: T2 update -> T4 read" true
    (dep "Item8" (aid 2 [ 1 ]) (aid 4 [ 1; 1 ]));
  let added obj x y =
    Action.Rel.mem x y (Schedule.find_exn sched (o obj)).Schedule.added_dep
  in
  check_bool "added at Enc" true (added "Enc" (aid 2 [ 1 ]) (aid 4 [ 1; 1 ]));
  check_bool "added at LinkedList" true
    (added "LinkedList" (aid 2 [ 1 ]) (aid 4 [ 1; 1 ]));
  (* serial execution: everything is consistent *)
  let v = Serializability.check h in
  check_bool "oo-serializable" true v.Serializability.oo_serializable;
  check_bool "conventional too (serial)" true
    (Baselines.conventional_serializable h)

let test_example4_crossing_interleaving () =
  (* the headline: an interleaving whose page-level conflicts cross
     (T1 before T3 on the leaf, T3 before T1 on the item slots) is
     conventionally NOT serializable but IS oo-serializable, because both
     crossings happen under commuting callers *)
  let t1, _, t3, _ = example4_trees () in
  let order =
    [
      (* T1 leaf pages first *)
      aid 1 [ 1; 1; 1; 1 ]; aid 1 [ 1; 1; 1; 2 ];
      (* T3 leaf pages *)
      aid 3 [ 1; 1; 1; 1 ]; aid 3 [ 1; 1; 1; 2 ];
      (* T3 item insert BEFORE T1's *)
      aid 3 [ 1; 2; 1 ]; aid 3 [ 1; 3 ];
      aid 1 [ 1; 2; 1 ]; aid 1 [ 1; 3 ];
    ]
  in
  let h = History.v ~tops:[ t1; t3 ] ~order ~commut:paper_registry in
  check_bool "well-formed" true (History.validate h = Ok ());
  check_bool "conventionally rejected" false
    (Baselines.conventional_serializable h);
  check_bool "oo-serializable" true (Serializability.oo_serializable h);
  (* and the conflicting-access count at top level is zero *)
  Alcotest.(check int)
    "no top-level conflicts" 0
    (Baselines.conflict_pairs h `Oo)

let suites =
  [
    ( "paper",
      [
        Alcotest.test_case "Example 1 / Fig. 4: different keys stop at Leaf11"
          `Quick test_example1_different_keys;
        Alcotest.test_case "Example 1 / Fig. 4: same key reaches the top" `Quick
          test_example1_same_key;
        Alcotest.test_case "Example 2 / Fig. 5: transaction tree" `Quick
          test_example2_tree_shape;
        Alcotest.test_case "Example 3 / Fig. 6: virtual objects" `Quick
          test_example3_extension;
        Alcotest.test_case "Example 4 / Fig. 8: dependency table" `Quick
          test_example4_dependency_table;
        Alcotest.test_case "Example 4 / Fig. 7: crossing interleaving" `Quick
          test_example4_crossing_interleaving;
      ] );
  ]
