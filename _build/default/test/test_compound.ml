(* Tests for the three-level compound document: semantic inheritance cut
   short at two intermediate levels, parallel chapter layouts, partial
   rollback through the level stack. *)

open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let open_protocol db = Protocol.open_nested ~reg:(Database.spec_registry db) ()

let test_edits_in_different_chapters_commute () =
  let db = Database.create () in
  let book = Compound_doc.create ~chapters:3 ~sections_per_chapter:4 db in
  let author c ctx =
    Compound_doc.edit book ctx ~chapter:c ~section:0
      ~text:(Printf.sprintf "by%d" c);
    Value.unit
  in
  let config =
    let p = open_protocol db in
    {
      (Engine.default_config p) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:5);
    }
  in
  let out =
    Engine.run ~config db ~protocol:config.Engine.protocol
      [ (1, "a1", author 0); (2, "a2", author 1); (3, "a3", author 2) ]
  in
  check_int "all committed" 3 (List.length out.Engine.committed);
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history);
  check_int "no top-level conflicts" 0
    (Baselines.conflict_pairs out.Engine.history `Oo)

let test_same_chapter_sections_commute_at_chapter () =
  (* two authors in ONE chapter, different sections: their page accesses
     collide (sections share the chapter page) but the chapter-level
     edits commute — the dependency dies at the chapter *)
  let db = Database.create () in
  let book = Compound_doc.create ~chapters:2 ~sections_per_chapter:4 db in
  let author s ctx =
    Compound_doc.edit book ctx ~chapter:0 ~section:s
      ~text:(Printf.sprintf "sec%d" s);
    Value.unit
  in
  let config =
    let p = open_protocol db in
    {
      (Engine.default_config p) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:6);
    }
  in
  let out =
    Engine.run ~config db ~protocol:config.Engine.protocol
      [ (1, "a1", author 0); (2, "a2", author 1) ]
  in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_bool "page conflicts exist" true
    (Baselines.conflicting_primitive_pairs out.Engine.history > 0);
  check_int "nothing reaches the top" 0
    (Baselines.conflict_pairs out.Engine.history `Oo);
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_parallel_layout_reads_everything () =
  let db = Database.create () in
  let book = Compound_doc.create ~chapters:3 ~sections_per_chapter:2 db in
  let writer ctx =
    Compound_doc.edit book ctx ~chapter:1 ~section:1 ~text:"edited";
    Value.unit
  in
  ignore (Engine.run db ~protocol:(open_protocol db) [ (1, "w", writer) ]);
  let result = ref [] in
  let layouter ctx =
    result := Compound_doc.layout book ctx;
    Value.unit
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (2, "l", layouter) ] in
  Alcotest.(check (list int)) "committed" [ 2 ] out.Engine.committed;
  check_int "three chapters" 3 (List.length !result);
  check_bool "saw the edit" true
    (List.exists (List.exists (fun s -> s = "edited")) !result);
  (* the chapter layouts forked: distinct processes appear in the tree *)
  let procs =
    List.map Action.process (History.all_actions out.Engine.history)
    |> List.sort_uniq Ids.Process_id.compare
  in
  check_bool "parallel branches used" true (List.length procs > 1)

let test_layout_conflicts_with_edits () =
  let db = Database.create () in
  let book = Compound_doc.create ~chapters:2 ~sections_per_chapter:2 db in
  let writer ctx =
    Compound_doc.edit book ctx ~chapter:0 ~section:0 ~text:"new";
    Value.unit
  in
  let layouter ctx =
    ignore (Compound_doc.layout book ctx);
    Value.unit
  in
  let config =
    let p = open_protocol db in
    {
      (Engine.default_config p) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:9);
    }
  in
  let out =
    Engine.run ~config db ~protocol:config.Engine.protocol
      [ (1, "edit", writer); (2, "layout", layouter) ]
  in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_bool "dependency reaches the top" true
    (Baselines.conflict_pairs out.Engine.history `Oo > 0);
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_abort_compensates_through_levels () =
  let db = Database.create () in
  let book = Compound_doc.create ~chapters:2 ~sections_per_chapter:2 db in
  let doomed ctx =
    Compound_doc.edit book ctx ~chapter:0 ~section:0 ~text:"overwritten";
    Runtime.abort "no"
  in
  ignore (Engine.run db ~protocol:(open_protocol db) [ (1, "d", doomed) ]);
  let reader ctx =
    Alcotest.(check string)
      "restored" "ch0 sec0"
      (Compound_doc.read book ctx ~chapter:0 ~section:0);
    Value.unit
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (2, "r", reader) ] in
  Alcotest.(check (list int)) "reader ok" [ 2 ] out.Engine.committed

let suites =
  [
    ( "compound_doc",
      [
        Alcotest.test_case "different chapters commute" `Quick
          test_edits_in_different_chapters_commute;
        Alcotest.test_case "sections commute at chapter level" `Quick
          test_same_chapter_sections_commute_at_chapter;
        Alcotest.test_case "parallel layout" `Quick
          test_parallel_layout_reads_everything;
        Alcotest.test_case "layout conflicts with edits" `Quick
          test_layout_conflicts_with_edits;
        Alcotest.test_case "abort compensates through levels" `Quick
          test_abort_compensates_through_levels;
      ] );
  ]
