(* Tests for partial rollback (Runtime.try_call): a subtransaction fails
   alone, its effects are undone in place, and the surrounding
   transaction continues — Moss's central feature of nested
   transactions. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol
module Escrow = Ooser_adts.Escrow_counter

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let o = Obj_id.v

let open_protocol db = Protocol.open_nested ~reg:(Database.spec_registry db) ()

let test_try_call_success () =
  let db = Database.create () in
  ignore (Adt_objects.register_counter db (o "C") 0);
  let body ctx =
    match Runtime.try_call ctx (o "C") "incr" [ Value.int 5 ] with
    | Ok _ -> Runtime.call ctx (o "C") "read" []
    | Error msg -> Runtime.abort msg
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (1, "t", body) ] in
  check_bool "result" true (List.assoc 1 out.Engine.results = Value.int 5)

let test_try_call_failure_continues () =
  (* the failed withdrawal is rolled back; the transaction proceeds with
     a fallback account and commits *)
  let db = Database.create () in
  let a = Adt_objects.register_counter db (o "A") ~low:0 ~high:100 3 in
  let b = Adt_objects.register_counter db (o "B") ~low:0 ~high:100 50 in
  let body ctx =
    (match Runtime.try_call ctx (o "A") "decr" [ Value.int 10 ] with
    | Ok _ -> ()
    | Error _ ->
        (* insufficient funds on A: take it from B instead *)
        ignore (Runtime.call ctx (o "B") "decr" [ Value.int 10 ]));
    Value.unit
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (1, "transfer", body) ] in
  Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
  check_int "A untouched" 3 (Escrow.value a);
  check_int "B debited" 40 (Escrow.value b);
  check_bool "history valid" true (History.validate out.Engine.history = Ok ());
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_partial_undo_of_completed_children () =
  (* the failing method did real work (a completed sub-call) before
     aborting: only that subtree is undone, earlier work survives *)
  let db = Database.create () in
  let x = Adt_objects.register_counter db (o "X") 0 in
  let y = Adt_objects.register_counter db (o "Y") 0 in
  let risky ctx _args =
    ignore (Runtime.call ctx (o "Y") "incr" [ Value.int 7 ]);
    Runtime.abort "risky failed after doing work"
  in
  Database.register db (o "Risky") ~spec:Commutativity.all_conflict
    [ ("go", Database.composite risky) ];
  let body ctx =
    ignore (Runtime.call ctx (o "X") "incr" [ Value.int 1 ]);
    (match Runtime.try_call ctx (o "Risky") "go" [] with
    | Ok _ -> Runtime.abort "should have failed"
    | Error msg -> check_bool "reason" true (msg = "risky failed after doing work"));
    ignore (Runtime.call ctx (o "X") "incr" [ Value.int 1 ]);
    Value.unit
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (1, "t", body) ] in
  Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
  check_int "X kept both increments" 2 (Escrow.value x);
  check_int "Y rolled back" 0 (Escrow.value y)

let test_nested_try_calls () =
  let db = Database.create () in
  let x = Adt_objects.register_counter db (o "X") 0 in
  let inner ctx _args =
    ignore (Runtime.call ctx (o "X") "incr" [ Value.int 1 ]);
    Runtime.abort "inner"
  in
  let outer ctx _args =
    ignore (Runtime.call ctx (o "X") "incr" [ Value.int 10 ]);
    match Runtime.try_call ctx (o "M") "inner" [] with
    | Ok v -> v
    | Error _ -> Runtime.abort "outer too"
  in
  Database.register db (o "M") ~spec:Commutativity.all_conflict
    [ ("inner", Database.composite inner); ("outer", Database.composite outer) ];
  let body ctx =
    match Runtime.try_call ctx (o "M") "outer" [] with
    | Ok _ -> Runtime.abort "unexpected"
    | Error _ -> Value.unit
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (1, "t", body) ] in
  Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
  (* inner's +1 undone by inner's failure; outer's +10 undone when outer
     aborted after catching *)
  check_int "everything unwound" 0 (Escrow.value x)

let test_try_call_unknown_method () =
  let db = Database.create () in
  ignore (Adt_objects.register_counter db (o "C") 0);
  let body ctx =
    match Runtime.try_call ctx (o "C") "frobnicate" [] with
    | Ok _ -> Runtime.abort "unexpected"
    | Error msg ->
        check_bool "soft failure" true (String.length msg > 0);
        Value.unit
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (1, "t", body) ] in
  Alcotest.(check (list int)) "committed despite bad call" [ 1 ]
    out.Engine.committed

let test_try_call_with_encyclopedia () =
  (* insert a key, then try an operation that fails; the insert must
     survive the partial rollback and the commit *)
  let db = Database.create () in
  let enc = Encyclopedia.create db in
  let boom _ctx _args = Runtime.abort "kaput" in
  Database.register db (o "Flaky") ~spec:Commutativity.all_commute
    [ ("go", Database.composite boom) ];
  let body ctx =
    Encyclopedia.insert enc ctx ~key:"keep" ~text:"kept";
    (match Runtime.try_call ctx (o "Flaky") "go" [] with
    | Ok _ -> Runtime.abort "unexpected"
    | Error _ -> ());
    Value.unit
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (1, "t", body) ] in
  Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
  let reader ctx =
    check_bool "kept" true (Encyclopedia.search enc ctx ~key:"keep" = Some "kept");
    Value.unit
  in
  ignore (Engine.run db ~protocol:(open_protocol db) [ (2, "r", reader) ])

let suites =
  [
    ( "partial_rollback",
      [
        Alcotest.test_case "try_call success" `Quick test_try_call_success;
        Alcotest.test_case "failure continues with fallback" `Quick
          test_try_call_failure_continues;
        Alcotest.test_case "undo of completed children" `Quick
          test_partial_undo_of_completed_children;
        Alcotest.test_case "nested try_calls" `Quick test_nested_try_calls;
        Alcotest.test_case "unknown method fails softly" `Quick
          test_try_call_unknown_method;
        Alcotest.test_case "with the encyclopedia" `Quick
          test_try_call_with_encyclopedia;
      ] );
  ]
