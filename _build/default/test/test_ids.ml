(* Unit tests for identifiers. *)

open Ooser_core

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_obj_id () =
  let o = Obj_id.v "Page4712" in
  check_string "name" "Page4712" (Obj_id.to_string o);
  check_bool "not virtual" false (Obj_id.is_virtual o);
  let o1 = Obj_id.virtualize o ~rank:1 in
  check_string "prime" "Page4712'" (Obj_id.to_string o1);
  check_bool "virtual" true (Obj_id.is_virtual o1);
  check_bool "original strips rank" true
    (Obj_id.equal o (Obj_id.original o1));
  let o2 = Obj_id.virtualize o ~rank:2 in
  check_string "double prime" "Page4712''" (Obj_id.to_string o2);
  check_bool "distinct ranks differ" false (Obj_id.equal o1 o2)

let test_action_id_paths () =
  let t3 = Action_id.root 3 in
  check_string "root" "T3" (Action_id.to_string t3);
  let a31 = Action_id.child t3 1 in
  let a312 = Action_id.child a31 2 in
  check_string "child" "a3.1.2" (Action_id.to_string a312);
  check_bool "parent" true
    (match Action_id.parent a312 with
    | Some p -> Action_id.equal p a31
    | None -> false);
  check_bool "root has no parent" true (Action_id.parent t3 = None);
  Alcotest.(check int) "depth" 2 (Action_id.depth a312);
  check_bool "is_root" true (Action_id.is_root t3);
  check_bool "not is_root" false (Action_id.is_root a312)

let test_ancestor () =
  let t = Action_id.root 1 in
  let a = Action_id.child t 1 in
  let b = Action_id.child a 3 in
  let c = Action_id.child t 2 in
  let check_anc name expect x y =
    check_bool name expect (Action_id.is_proper_ancestor x y)
  in
  check_anc "t anc a" true t a;
  check_anc "t anc b" true t b;
  check_anc "a anc b" true a b;
  check_anc "a not anc a" false a a;
  check_anc "b not anc a" false b a;
  check_anc "a not anc c" false a c;
  check_anc "cross-transaction" false (Action_id.root 2) a

let test_virtual_action_ids () =
  let a = Action_id.child (Action_id.root 1) 1 in
  let a' = Action_id.virtualize a ~rank:1 in
  check_string "prime" "a1.1'" (Action_id.to_string a');
  check_bool "virtual" true (Action_id.is_virtual a');
  check_bool "devirtualize" true
    (Action_id.equal a (Action_id.devirtualize a'));
  check_bool "distinct from original" false (Action_id.equal a a')

let test_process_id () =
  let p = Process_id.main 4 in
  check_string "main" "p4" (Process_id.to_string p);
  let q = Process_id.v ~top:4 ~branch:2 in
  check_string "branch" "p4.2" (Process_id.to_string q);
  check_bool "distinct" false (Process_id.equal p q);
  check_bool "same" true (Process_id.equal q (Process_id.v ~top:4 ~branch:2))

let test_ordering_total () =
  (* compare is a total order consistent with equality *)
  let ids =
    [
      Action_id.root 1;
      Action_id.child (Action_id.root 1) 1;
      Action_id.child (Action_id.root 1) 2;
      Action_id.root 2;
      Action_id.virtualize (Action_id.child (Action_id.root 1) 1) ~rank:1;
    ]
  in
  let sorted = List.sort Action_id.compare ids in
  Alcotest.(check int) "no dedup" (List.length ids) (List.length sorted);
  List.iter
    (fun x ->
      check_bool "reflexive" true (Action_id.compare x x = 0))
    ids

let suites =
  [
    ( "ids",
      [
        Alcotest.test_case "object ids and virtual ranks" `Quick test_obj_id;
        Alcotest.test_case "action id paths" `Quick test_action_id_paths;
        Alcotest.test_case "ancestor relation" `Quick test_ancestor;
        Alcotest.test_case "virtual action ids" `Quick test_virtual_action_ids;
        Alcotest.test_case "process ids" `Quick test_process_id;
        Alcotest.test_case "ordering is total" `Quick test_ordering_total;
      ] );
  ]
