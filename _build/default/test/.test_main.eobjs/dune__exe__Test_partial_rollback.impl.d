test/test_partial_rollback.ml: Adt_objects Alcotest Commutativity Database Encyclopedia Engine History List Obj_id Ooser_adts Ooser_cc Ooser_core Ooser_oodb Runtime Serializability String Value
