test/test_enc_api.ml: Alcotest Baselines Database Encyclopedia Engine List Ooser_cc Ooser_core Ooser_oodb Ooser_sim Printf Runtime Serializability Value
