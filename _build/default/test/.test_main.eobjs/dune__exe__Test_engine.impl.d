test/test_engine.ml: Action_id Alcotest Baselines Commutativity Database Engine History List Obj_id Ooser_cc Ooser_core Ooser_oodb Ooser_sim Runtime Serializability String Value
