test/test_recovery.ml: Alcotest Gen List Logged_store Ooser_sim Ooser_storage Printf QCheck2 QCheck_alcotest Wal
