test/test_extension.ml: Action Alcotest Call_tree Commutativity Extension History Ids List Obj_id Ooser_cc Ooser_core Ooser_oodb Printf Schedule Serializability Value
