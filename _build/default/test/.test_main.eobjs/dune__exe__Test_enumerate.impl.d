test/test_enumerate.ml: Alcotest Call_tree Commutativity Enumerate History List Obj_id Ooser_core Ooser_workload Paper_examples Printf Random_schedules
