test/test_cc.ml: Action Alcotest Commutativity Ids List Obj_id Ooser_cc Ooser_core
