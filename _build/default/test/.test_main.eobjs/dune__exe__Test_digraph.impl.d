test/test_digraph.ml: Alcotest Array Digraph Fmt Fun Int List Ooser_core QCheck2 QCheck_alcotest
