test/test_storage.ml: Alcotest Buffer_pool Bytes Disk Gen Hashtbl List Ooser_storage Option Page QCheck2 QCheck_alcotest String
