test/test_compound.ml: Action Alcotest Baselines Compound_doc Database Engine History Ids List Ooser_cc Ooser_core Ooser_oodb Ooser_sim Ooser_workload Printf Runtime Serializability Value
