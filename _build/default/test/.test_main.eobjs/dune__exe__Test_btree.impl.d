test/test_btree.ml: Alcotest Btree Buffer_pool Disk Gen List Node Ooser_btree Ooser_storage Printf QCheck2 QCheck_alcotest
