test/test_history.ml: Action_id Alcotest Call_tree Commutativity History List Obj_id Ooser_core Serializability
