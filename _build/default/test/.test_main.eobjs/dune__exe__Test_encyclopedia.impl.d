test/test_encyclopedia.ml: Action Alcotest Baselines Database Encyclopedia Engine Extension History List Ooser_cc Ooser_core Ooser_oodb Ooser_sim Printf Runtime Schedule Serializability Value
