test/test_matrix.ml: Alcotest Banking Database Enc_workload Encyclopedia Engine History Inventory List Ooser_cc Ooser_core Ooser_oodb Ooser_sim Ooser_workload Printf Serializability
