test/test_certifier.ml: Alcotest Banking Commutativity Database Engine List Obj_id Ooser_cc Ooser_core Ooser_oodb Ooser_sim Ooser_workload Runtime Serializability Value
