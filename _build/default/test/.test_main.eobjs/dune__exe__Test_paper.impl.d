test/test_paper.ml: Action Alcotest Baselines Call_tree Commutativity Extension History Ids List Obj_id Ooser_core Schedule Serializability Value
