test/test_schedule.ml: Action Action_id Alcotest Baselines Call_tree Commutativity Extension Fmt History List Obj_id Ooser_core Schedule Serializability
