test/test_adt_objects.ml: Adt_objects Alcotest Baselines Database Engine List Obj_id Ooser_adts Ooser_cc Ooser_core Ooser_oodb Ooser_sim Runtime Serializability Value
