test/test_adts.ml: Action Alcotest Commutativity Directory Escrow_counter Fifo_queue Gen Ids Kv_set Obj_id Ooser_adts Ooser_core Option QCheck2 QCheck_alcotest Value
