test/test_calltree.ml: Action Action_id Alcotest Call_tree List Obj_id Ooser_core Process_id
