test/test_woundwait.ml: Alcotest Baselines Commutativity Database Engine List Obj_id Ooser_cc Ooser_core Ooser_oodb Ooser_sim Ooser_workload Printf Runtime Serializability Value
