test/test_commutativity.ml: Action Action_id Alcotest Commutativity Obj_id Ooser_core Process_id Value
