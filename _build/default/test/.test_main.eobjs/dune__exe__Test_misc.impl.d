test/test_misc.ml: Alcotest Array List Ooser_core Ooser_sim Value
