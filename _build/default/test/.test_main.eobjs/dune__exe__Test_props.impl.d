test/test_props.ml: Banking Baselines Database Enc_workload Engine History List Ooser_cc Ooser_core Ooser_oodb Ooser_sim Ooser_workload QCheck2 QCheck_alcotest Random_schedules Serializability
