test/test_text.ml: Action Alcotest Baselines Call_tree Commutativity Doc Gen History Ids List Obj_id Ooser_core Ooser_text Ooser_workload Parser QCheck2 QCheck_alcotest Serializability String Value
