test/test_inventory.ml: Alcotest Baselines Database Engine Inventory List Ooser_cc Ooser_core Ooser_oodb Ooser_sim Ooser_workload Printf Serializability Value
