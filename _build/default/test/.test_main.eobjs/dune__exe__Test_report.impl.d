test/test_report.ml: Action Alcotest Call_tree Commutativity Fmt History Ids Obj_id Ooser_core Ooser_workload Paper_examples Report Schedule String
