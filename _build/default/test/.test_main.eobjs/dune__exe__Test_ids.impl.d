test/test_ids.ml: Action_id Alcotest List Obj_id Ooser_core Process_id
