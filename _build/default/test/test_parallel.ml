(* Tests for intra-transaction parallelism (Def. 9): parallel branches as
   separate processes, action sets with partial precedence, branch-level
   conflicts and deadlocks. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let o = Obj_id.v

let register_cell db name init =
  let state = ref init in
  let read _ _ = Value.int !state in
  let write ctx args =
    match args with
    | [ Value.Int v ] ->
        let old = !state in
        Runtime.on_undo ctx (fun () -> state := old);
        state := v;
        Value.unit
    | _ -> invalid_arg "write"
  in
  let add ctx args =
    match args with
    | [ Value.Int v ] ->
        let old = !state in
        Runtime.on_undo ctx (fun () -> state := old);
        state := !state + v;
        Value.int !state
    | _ -> invalid_arg "add"
  in
  Database.register db (o name)
    ~spec:(Commutativity.rw ~reads:[ "read" ] ~writes:[ "write"; "add" ])
    [
      ("read", Database.primitive read);
      ("write", Database.primitive write);
      ("add", Database.primitive add);
    ];
  state

let test_fork_basic () =
  let db = Database.create () in
  let a = register_cell db "A" 0 in
  let b = register_cell db "B" 0 in
  let c = register_cell db "C" 0 in
  let body ctx =
    let results =
      Runtime.call_par ctx
        [
          Runtime.invocation (o "A") "write" [ Value.int 1 ];
          Runtime.invocation (o "B") "write" [ Value.int 2 ];
          Runtime.invocation (o "C") "write" [ Value.int 3 ];
        ]
    in
    Value.int (List.length results)
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol [ (1, "t1", body) ] in
  Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
  check_int "A" 1 !a;
  check_int "B" 2 !b;
  check_int "C" 3 !c;
  check_bool "result count" true (List.assoc 1 out.Engine.results = Value.int 3);
  check_bool "history valid" true (History.validate out.Engine.history = Ok ());
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history);
  (* the three branches carry three distinct processes, none the main one *)
  let procs =
    List.filter_map
      (fun act ->
        if Ids.Action_id.depth (Action.id act) = 1 then Some (Action.process act)
        else None)
      (History.all_actions out.Engine.history)
  in
  check_int "three branch actions" 3 (List.length procs);
  check_int "three distinct processes" 3
    (List.length (List.sort_uniq Ids.Process_id.compare procs))

let test_fork_no_precedence () =
  let db = Database.create () in
  ignore (register_cell db "A" 0);
  ignore (register_cell db "B" 0);
  let body ctx =
    ignore (Runtime.call ctx (o "A") "write" [ Value.int 9 ]);
    ignore
      (Runtime.call_par ctx
         [
           Runtime.invocation (o "A") "read" [];
           Runtime.invocation (o "B") "read" [];
         ]);
    ignore (Runtime.call ctx (o "B") "write" [ Value.int 9 ]);
    Value.unit
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol [ (1, "t1", body) ] in
  (match History.tops out.Engine.history with
  | [ tree ] ->
      let prec = Call_tree.prec tree in
      (* children: write(0), read(1), read(2), write(3); the two parallel
         reads are mutually unordered but ordered wrt the writes *)
      let mem p = List.mem p prec in
      check_bool "write before reads" true (mem (0, 1) && mem (0, 2));
      check_bool "reads before write" true (mem (1, 3) && mem (2, 3));
      check_bool "reads unordered" false (mem (1, 2) || mem (2, 1));
      (* program-order pairs reflect the partial order *)
      let pairs = Call_tree.program_order_pairs tree in
      let has a b =
        List.exists
          (fun (x, y) ->
            Ids.Action_id.equal x (Ids.Action_id.v ~top:1 ~path:[ a ])
            && Ids.Action_id.equal y (Ids.Action_id.v ~top:1 ~path:[ b ]))
          pairs
      in
      check_bool "n3 has write->read" true (has 1 2 && has 1 3);
      check_bool "n3 lacks read->read" false (has 2 3 || has 3 2)
  | _ -> Alcotest.fail "expected one tree");
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_branches_conflict () =
  (* two branches of ONE transaction add to the same cell: different
     processes, so they conflict (Def. 9) and the lock serializes them;
     both effects must apply *)
  let db = Database.create () in
  let a = register_cell db "A" 0 in
  let body ctx =
    ignore
      (Runtime.call_par ctx
         [
           Runtime.invocation (o "A") "add" [ Value.int 1 ];
           Runtime.invocation (o "A") "add" [ Value.int 2 ];
         ]);
    Value.unit
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol [ (1, "t1", body) ] in
  Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
  check_int "both adds applied" 3 !a;
  check_bool "history valid" true (History.validate out.Engine.history = Ok ());
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_fork_inside_method () =
  (* a composite method forks: a scatter-gather read over two cells *)
  let db = Database.create () in
  ignore (register_cell db "X" 10);
  ignore (register_cell db "Y" 20);
  let gather ctx _args =
    let vs =
      Runtime.call_par ctx
        [
          Runtime.invocation (o "X") "read" [];
          Runtime.invocation (o "Y") "read" [];
        ]
    in
    Value.int (List.fold_left (fun acc v -> acc + Value.to_int_exn v) 0 vs)
  in
  Database.register db (o "Gather") ~spec:Commutativity.all_commute
    [ ("sum", Database.composite gather) ];
  let body ctx = Runtime.call ctx (o "Gather") "sum" [] in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol [ (1, "t1", body) ] in
  check_bool "sum" true (List.assoc 1 out.Engine.results = Value.int 30);
  check_bool "history valid" true (History.validate out.Engine.history = Ok ());
  (* the reads are children of the Gather.sum action *)
  match History.tops out.Engine.history with
  | [ tree ] -> (
      match Call_tree.find tree (Ids.Action_id.v ~top:1 ~path:[ 1 ]) with
      | Some node -> check_int "two parallel children" 2
                       (List.length (Call_tree.children node))
      | None -> Alcotest.fail "sum action missing")
  | _ -> Alcotest.fail "expected one tree"

let test_nested_forks () =
  let db = Database.create () in
  ignore (register_cell db "A" 0);
  ignore (register_cell db "B" 0);
  ignore (register_cell db "C" 0);
  ignore (register_cell db "D" 0);
  let pair ctx names =
    ignore
      (Runtime.call_par ctx
         (List.map (fun n -> Runtime.invocation (o n) "write" [ Value.int 5 ]) names));
    Value.unit
  in
  Database.register db (o "L")
    ~spec:Commutativity.all_commute
    [
      ("ab", Database.composite (fun ctx _ -> pair ctx [ "A"; "B" ]));
      ("cd", Database.composite (fun ctx _ -> pair ctx [ "C"; "D" ]));
    ];
  let body ctx =
    ignore
      (Runtime.call_par ctx
         [ Runtime.invocation (o "L") "ab" []; Runtime.invocation (o "L") "cd" [] ]);
    Value.unit
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol [ (1, "t1", body) ] in
  Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
  check_bool "history valid" true (History.validate out.Engine.history = Ok ());
  check_int "four leaf writes" 4
    (List.length (History.order out.Engine.history));
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_empty_fork () =
  let db = Database.create () in
  let body ctx =
    let vs = Runtime.call_par ctx [] in
    Value.int (List.length vs)
  in
  let protocol = Protocol.unlocked () in
  let out = Engine.run db ~protocol [ (1, "t1", body) ] in
  check_bool "empty fork returns []" true
    (List.assoc 1 out.Engine.results = Value.int 0)

let test_abort_unwinds_branches () =
  (* one branch aborts the transaction: all branch effects are undone *)
  let db = Database.create () in
  let a = register_cell db "A" 100 in
  let boom _ctx _args = Runtime.abort "branch failure" in
  Database.register db (o "Boom") ~spec:Commutativity.all_commute
    [ ("go", Database.composite boom) ];
  let body ctx =
    ignore
      (Runtime.call_par ctx
         [
           Runtime.invocation (o "A") "write" [ Value.int 0 ];
           Runtime.invocation (o "Boom") "go" [];
         ]);
    Value.unit
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let out = Engine.run db ~protocol [ (1, "t1", body) ] in
  check_int "aborted" 1 (List.length out.Engine.aborted);
  check_int "branch write undone" 100 !a

let test_parallel_txns_with_branches () =
  (* several transactions, each forking; everything serializes correctly *)
  let db = Database.create () in
  let a = register_cell db "A" 0 in
  let b = register_cell db "B" 0 in
  let body ctx =
    ignore
      (Runtime.call_par ctx
         [
           Runtime.invocation (o "A") "add" [ Value.int 1 ];
           Runtime.invocation (o "B") "add" [ Value.int 1 ];
         ]);
    Value.unit
  in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:77);
    }
  in
  let out =
    Engine.run ~config db ~protocol
      [ (1, "t1", body); (2, "t2", body); (3, "t3", body) ]
  in
  check_int "all committed" 3 (List.length out.Engine.committed);
  check_int "A" 3 !a;
  check_int "B" 3 !b;
  check_bool "history valid" true (History.validate out.Engine.history = Ok ());
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_intra_txn_deadlock_resolved () =
  (* branch 1 takes A then B; branch 2 takes B then A: a deadlock INSIDE
     one transaction, detected at task granularity and resolved by
     restarting the transaction *)
  let db = Database.create () in
  let a = register_cell db "A" 0 in
  let b = register_cell db "B" 0 in
  let seq ctx names =
    List.iter
      (fun n -> ignore (Runtime.call ctx (o n) "add" [ Value.int 1 ]))
      names;
    Value.unit
  in
  Database.register db (o "W")
    ~spec:Commutativity.all_conflict
    [
      ("ab", Database.composite (fun ctx _ -> seq ctx [ "A"; "B" ]));
      ("ba", Database.composite (fun ctx _ -> seq ctx [ "B"; "A" ]));
    ];
  let body ctx =
    ignore
      (Runtime.call_par ctx
         [ Runtime.invocation (o "W") "ab" []; Runtime.invocation (o "W") "ba" [] ]);
    Value.unit
  in
  (* flat 2PL holds the page locks to the end: guaranteed deadlock *)
  let protocol = Protocol.flat_2pl ~reg:(Database.spec_registry db) () in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:3);
      Engine.max_restarts = 50;
    }
  in
  let out = Engine.run ~config db ~protocol [ (1, "t1", body) ] in
  match out.Engine.committed with
  | [ 1 ] ->
      check_int "A got both adds" 2 !a;
      check_int "B got both adds" 2 !b;
      check_bool "restarts or luck" true (List.assoc "aborts" out.Engine.metrics >= 0)
  | [] ->
      (* permanently aborted after exhausting restarts: state must be
         clean *)
      check_int "A restored" 0 !a;
      check_int "B restored" 0 !b
  | _ -> Alcotest.fail "unexpected commit set"

(* Property: random fork workloads under every protocol and deadlock
   policy stay correct.  The cells use LOGICAL undo (subtract what was
   added) rather than before-image restore: the optimistic certifier runs
   without locks, so a physical restore could clobber another
   transaction's concurrent update (see Engine.config.certify). *)
let register_logical_cell db name =
  let state = ref 0 in
  let add ctx args =
    match args with
    | [ Value.Int v ] ->
        Runtime.on_undo ctx (fun () -> state := !state - v);
        state := !state + v;
        Value.int v
    | _ -> invalid_arg "add"
  in
  Database.register db (o name)
    ~spec:(Commutativity.rw ~reads:[] ~writes:[ "add" ])
    [ ("add", Database.primitive add) ];
  state

let prop_forks_under_protocols =
  QCheck2.Test.make ~name:"forked branches correct under every protocol"
    ~count:24
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 0 3))
    (fun (seed, pmode) ->
      let db = Database.create () in
      let cells =
        Array.init 4 (fun i -> register_logical_cell db (Printf.sprintf "C%d" i))
      in
      let rng = Rng.create ~seed in
      let body _i ctx =
        let picks =
          List.init 3 (fun _ -> Rng.int rng 4) |> List.sort_uniq compare
        in
        ignore
          (Runtime.call_par ctx
             (List.map
                (fun c ->
                  Runtime.invocation
                    (o (Printf.sprintf "C%d" c))
                    "add" [ Value.int 1 ])
                picks));
        Value.int (List.length picks)
      in
      let reg = Database.spec_registry db in
      let protocol, certify =
        match pmode with
        | 0 -> (Protocol.open_nested ~reg (), false)
        | 1 -> (Protocol.flat_2pl ~reg (), false)
        | 2 -> (Protocol.closed_nested ~reg (), false)
        | _ -> (Protocol.unlocked (), true)
      in
      let config =
        {
          (Engine.default_config protocol) with
          Engine.certify;
          Engine.strategy = Engine.Random_pick (Rng.create ~seed:(seed + 9));
          Engine.max_restarts = 40;
        }
      in
      let out =
        Engine.run ~config db ~protocol
          [ (1, "t1", body 1); (2, "t2", body 2); (3, "t3", body 3) ]
      in
      let total_adds =
        List.fold_left
          (fun acc (_, v) -> acc + Value.to_int_exn v)
          0 out.Engine.results
      in
      let total_state = Array.fold_left (fun a c -> a + !c) 0 cells in
      List.length out.Engine.committed = 3
      && total_adds = total_state
      && History.validate out.Engine.history = Ok ()
      && Serializability.oo_serializable out.Engine.history)

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "fork basic" `Quick test_fork_basic;
        Alcotest.test_case "fork precedence structure" `Quick
          test_fork_no_precedence;
        Alcotest.test_case "branches of one txn conflict (Def. 9)" `Quick
          test_branches_conflict;
        Alcotest.test_case "fork inside a method" `Quick test_fork_inside_method;
        Alcotest.test_case "nested forks" `Quick test_nested_forks;
        Alcotest.test_case "empty fork" `Quick test_empty_fork;
        Alcotest.test_case "abort unwinds branches" `Quick
          test_abort_unwinds_branches;
        Alcotest.test_case "parallel txns with branches" `Quick
          test_parallel_txns_with_branches;
        Alcotest.test_case "intra-transaction deadlock" `Quick
          test_intra_txn_deadlock_resolved;
        QCheck_alcotest.to_alcotest prop_forks_under_protocols;
      ] );
  ]
