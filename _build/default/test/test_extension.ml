(* Deep tests of the virtual-object extension (Def. 5): multi-level
   re-entrancy, virtual-object sharing across transactions, and the
   faithfulness of the inherited dependencies. *)

open Ooser_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let o = Obj_id.v
let aid top path = Ids.Action_id.v ~top ~path

let all_conflict = Commutativity.uniform Commutativity.all_conflict

let test_no_cycles_no_virtuals () =
  let t =
    Call_tree.Build.(
      top ~n:1 [ call (o "A") "m" [ call (o "B") "n" [] ] ])
  in
  let h = History.of_serial ~tops:[ t ] ~commut:all_conflict in
  let ext = Extension.extend h in
  check_int "no virtual objects" 0 (List.length (Extension.virtual_objects ext));
  (* every action still on its own object *)
  check_bool "A unchanged" true
    (Ids.Action_id.Set.mem (aid 1 [ 1 ]) (Extension.acts_of ext (o "A")))

let test_rank2_nesting () =
  (* O.a -> O.b -> O.c: three levels on one object; ranks 0/1/2 produce
     O' and O'' *)
  let t =
    Call_tree.Build.(
      top ~n:1
        [ call (o "O") "a" [ call (o "O") "b" [ call (o "O") "c" [] ] ] ])
  in
  let h = History.of_serial ~tops:[ t ] ~commut:all_conflict in
  let ext = Extension.extend h in
  let v1 = Obj_id.virtualize (o "O") ~rank:1 in
  let v2 = Obj_id.virtualize (o "O") ~rank:2 in
  check_int "two virtual objects" 2
    (List.length (Extension.virtual_objects ext));
  check_bool "b on O'" true
    (Ids.Action_id.Set.mem (aid 1 [ 1; 1 ]) (Extension.acts_of ext v1));
  check_bool "c on O''" true
    (Ids.Action_id.Set.mem (aid 1 [ 1; 1; 1 ]) (Extension.acts_of ext v2));
  check_bool "a stays on O" true
    (Ids.Action_id.Set.mem (aid 1 [ 1 ]) (Extension.acts_of ext (o "O")));
  (* duplicates: a is duplicated on both virtual objects, b on O'' *)
  check_bool "a' on O'" true
    (Ids.Action_id.Set.mem
       (Ids.Action_id.virtualize (aid 1 [ 1 ]) ~rank:1)
       (Extension.acts_of ext v1));
  check_bool "a'' on O''" true
    (Ids.Action_id.Set.mem
       (Ids.Action_id.virtualize (aid 1 [ 1 ]) ~rank:2)
       (Extension.acts_of ext v2));
  check_bool "b'' on O''" true
    (Ids.Action_id.Set.mem
       (Ids.Action_id.virtualize (aid 1 [ 1; 1 ]) ~rank:2)
       (Extension.acts_of ext v2));
  (* single sequential transaction: trivially serializable *)
  check_bool "oo-serializable" true (Serializability.oo_serializable h)

let test_shared_virtual_across_txns () =
  (* both transactions re-enter O at depth 1: their inner actions share
     O' and their mutual conflict is preserved there *)
  let tree n =
    Call_tree.Build.(
      top ~n [ call (o "O") "outer" [ call (o "O") "inner" [] ] ])
  in
  let h = History.of_serial ~tops:[ tree 1; tree 2 ] ~commut:all_conflict in
  let ext = Extension.extend h in
  let v1 = Obj_id.virtualize (o "O") ~rank:1 in
  check_int "one shared virtual object" 1
    (List.length (Extension.virtual_objects ext));
  let acts = Extension.acts_of ext v1 in
  check_bool "both inner actions share O'" true
    (Ids.Action_id.Set.mem (aid 1 [ 1; 1 ]) acts
    && Ids.Action_id.Set.mem (aid 2 [ 1; 1 ]) acts);
  (* the cross-transaction conflict at O' orders the inner actions and
     inherits to the outer ones (everything conflicts here) *)
  let sched = Schedule.compute h in
  let s = Schedule.find_exn sched v1 in
  check_bool "inner deps at O'" true
    (Action.Rel.mem (aid 1 [ 1; 1 ]) (aid 2 [ 1; 1 ]) s.Schedule.act_dep);
  check_bool "serial run accepted" true (Serializability.oo_serializable h)

let test_reentrant_conflict_rejected () =
  (* interleave the two re-entrant transactions so the O-level and
     O'-level conflicts cross: must be rejected *)
  let tree n =
    Call_tree.Build.(
      top ~n
        [
          call (o "O") "outer"
            [ call (o "P") "w1" []; call (o "O") "inner" [ call (o "P") "w2" [] ] ];
        ])
  in
  let order =
    [
      aid 1 [ 1; 1 ];  (* T1 P.w1 *)
      aid 2 [ 1; 1 ];  (* T2 P.w1 *)
      aid 2 [ 1; 2; 1 ];  (* T2 inner P.w2 *)
      aid 1 [ 1; 2; 1 ];  (* T1 inner P.w2 *)
    ]
  in
  let h = History.v ~tops:[ tree 1; tree 2 ] ~order ~commut:all_conflict in
  check_bool "well-formed" true (History.validate h = Ok ());
  check_bool "crossed re-entrant conflict rejected" false
    (Serializability.oo_serializable h)

let test_duplicate_same_call_path_neutral () =
  (* the ancestor is duplicated onto the virtual object but never
     conflicts with its own descendant (Def. 5's exclusion, realised via
     the call-path rule) *)
  let t =
    Call_tree.Build.(
      top ~n:1 [ call (o "O") "outer" [ call (o "O") "inner" [] ] ])
  in
  let h = History.of_serial ~tops:[ t ] ~commut:all_conflict in
  let sched = Schedule.compute h in
  let v1 = Obj_id.virtualize (o "O") ~rank:1 in
  let s = Schedule.find_exn sched v1 in
  (* the duplicate outer' is present but has no dependency with inner *)
  let dup = Ids.Action_id.virtualize (aid 1 [ 1 ]) ~rank:1 in
  check_bool "duplicate present" true (Ids.Action_id.Set.mem dup s.Schedule.acts);
  check_bool "no dep with own descendant" false
    (Action.Rel.mem dup (aid 1 [ 1; 1 ]) s.Schedule.act_dep
    || Action.Rel.mem (aid 1 [ 1; 1 ]) dup s.Schedule.act_dep)

let test_engine_reentrancy_end_to_end () =
  (* the BpTree root split exercises re-entrancy through the engine; run
     enough inserts to split the root several times and check the
     extension output on the real history *)
  let db = Ooser_oodb.Database.create () in
  let enc = Ooser_oodb.Encyclopedia.create ~fanout:2 db in
  let body ctx =
    for i = 1 to 10 do
      Ooser_oodb.Encyclopedia.insert enc ctx
        ~key:(Printf.sprintf "k%02d" i) ~text:"t"
    done;
    Value.unit
  in
  let protocol =
    Ooser_cc.Protocol.open_nested
      ~reg:(Ooser_oodb.Database.spec_registry db) ()
  in
  let out = Ooser_oodb.Engine.run db ~protocol [ (1, "w", body) ] in
  Alcotest.(check (list int)) "committed" [ 1 ] out.Ooser_oodb.Engine.committed;
  let ext = Extension.extend out.Ooser_oodb.Engine.history in
  check_bool "virtual objects from grow" true
    (Extension.virtual_objects ext <> []);
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Ooser_oodb.Engine.history)

let suites =
  [
    ( "extension",
      [
        Alcotest.test_case "no cycles, no virtual objects" `Quick
          test_no_cycles_no_virtuals;
        Alcotest.test_case "rank-2 nesting" `Quick test_rank2_nesting;
        Alcotest.test_case "shared virtual object across txns" `Quick
          test_shared_virtual_across_txns;
        Alcotest.test_case "crossed re-entrant conflict rejected" `Quick
          test_reentrant_conflict_rejected;
        Alcotest.test_case "ancestor duplicate is neutral" `Quick
          test_duplicate_same_call_path_neutral;
        Alcotest.test_case "engine re-entrancy end to end" `Quick
          test_engine_reentrancy_end_to_end;
      ] );
  ]
