(* Tests for the inventory application: escrow-backed orders, soft
   rejection on insufficient stock, the report/order phantom, scripted
   interleavings through the engine. *)

open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let open_protocol db = Protocol.open_nested ~reg:(Database.spec_registry db) ()

let test_orders_commute_on_ample_stock () =
  let db = Database.create () in
  let inv = Inventory.create ~products:2 ~initial_stock:100 db in
  let buyer product ctx =
    check_bool "accepted" true
      (Inventory.place_order inv ctx ~product ~qty:5 <> None);
    Value.unit
  in
  let config =
    let p = open_protocol db in
    {
      (Engine.default_config p) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:4);
    }
  in
  let out =
    Engine.run ~config db ~protocol:config.Engine.protocol
      [ (1, "b1", buyer "p0"); (2, "b2", buyer "p0"); (3, "b3", buyer "p1") ]
  in
  check_int "all committed" 3 (List.length out.Engine.committed);
  check_int "stock p0" 90 (Inventory.stock_level inv 0);
  check_int "stock p1" 95 (Inventory.stock_level inv 1);
  check_int "revenue" ((10 * 5 * 2) + (11 * 5)) (Inventory.revenue_total inv);
  check_int "orders queued" 3 (Inventory.pending_orders inv);
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_insufficient_stock_rejected_softly () =
  let db = Database.create () in
  let inv = Inventory.create ~products:1 ~initial_stock:4 db in
  let result = ref None in
  let buyer ctx =
    (* the big order fails softly; the small one then succeeds in the
       SAME transaction *)
    result := Inventory.place_order inv ctx ~product:"p0" ~qty:10;
    check_bool "small order accepted" true
      (Inventory.place_order inv ctx ~product:"p0" ~qty:2 <> None);
    Value.unit
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (1, "b", buyer) ] in
  Alcotest.(check (list int)) "committed" [ 1 ] out.Engine.committed;
  check_bool "big order rejected" true (!result = None);
  check_int "stock debited only once" 2 (Inventory.stock_level inv 0);
  check_int "one order in queue" 1 (Inventory.pending_orders inv);
  check_int "revenue only for the accepted order" 20
    (Inventory.revenue_total inv)

let test_unknown_product () =
  let db = Database.create () in
  let inv = Inventory.create ~products:1 db in
  let buyer ctx =
    check_bool "rejected" true
      (Inventory.place_order inv ctx ~product:"nonexistent" ~qty:1 = None);
    Value.unit
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (1, "b", buyer) ] in
  Alcotest.(check (list int)) "still commits" [ 1 ] out.Engine.committed

let test_fulfilment_fifo () =
  let db = Database.create () in
  let inv = Inventory.create ~products:2 db in
  let buyer ctx =
    ignore (Inventory.place_order inv ctx ~product:"p0" ~qty:1);
    ignore (Inventory.place_order inv ctx ~product:"p1" ~qty:2);
    Value.unit
  in
  ignore (Engine.run db ~protocol:(open_protocol db) [ (1, "b", buyer) ]);
  let shipper ctx =
    (match Inventory.fulfil_one inv ctx with
    | Some (Value.Pair (Value.Str p, Value.Int q)) ->
        check_bool "fifo head" true (p = "p0" && q = 1)
    | _ -> Alcotest.fail "expected an order");
    Value.unit
  in
  let out = Engine.run db ~protocol:(open_protocol db) [ (2, "s", shipper) ] in
  Alcotest.(check (list int)) "committed" [ 2 ] out.Engine.committed;
  check_int "one left" 1 (Inventory.pending_orders inv)

let test_report_conflicts_with_orders () =
  let db = Database.create () in
  let inv = Inventory.create ~products:2 db in
  let buyer ctx =
    ignore (Inventory.place_order inv ctx ~product:"p0" ~qty:1);
    Value.unit
  in
  let auditor ctx =
    ignore (Inventory.report inv ctx);
    Value.unit
  in
  let config =
    let p = open_protocol db in
    {
      (Engine.default_config p) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:8);
    }
  in
  let out =
    Engine.run ~config db ~protocol:config.Engine.protocol
      [ (1, "buy", buyer); (2, "audit", auditor) ]
  in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_bool "audit/order dependency" true
    (Baselines.conflict_pairs out.Engine.history `Oo > 0)

let test_scripted_interleaving () =
  (* drive a specific interleaving through the engine: T2 completes its
     whole order between T1's two orders — accepted and serializable *)
  let db = Database.create () in
  let inv = Inventory.create ~products:2 ~initial_stock:50 db in
  let b1 ctx =
    ignore (Inventory.place_order inv ctx ~product:"p0" ~qty:1);
    ignore (Inventory.place_order inv ctx ~product:"p1" ~qty:1);
    Value.unit
  in
  let b2 ctx =
    ignore (Inventory.place_order inv ctx ~product:"p0" ~qty:1);
    Value.unit
  in
  let protocol = open_protocol db in
  (* T1 places the first order (~steps), then T2 runs to completion, then
     T1 finishes *)
  let script = ref (List.init 25 (fun _ -> 1) @ List.init 40 (fun _ -> 2)
                    @ List.init 100 (fun _ -> 1)) in
  let config =
    { (Engine.default_config protocol) with Engine.strategy = Engine.Scripted script }
  in
  let out =
    Engine.run ~config db ~protocol [ (1, "b1", b1); (2, "b2", b2) ]
  in
  check_int "both committed" 2 (List.length out.Engine.committed);
  check_int "stock p0" 48 (Inventory.stock_level inv 0);
  check_bool "oo-serializable" true
    (Serializability.oo_serializable out.Engine.history)

let test_contended_stock_keeps_invariants () =
  (* more demand than stock: a subset of orders gets through, stock never
     goes negative, queue matches accepted orders over many seeds *)
  let ok = ref true in
  for seed = 1 to 10 do
    let db = Database.create () in
    let inv = Inventory.create ~products:1 ~initial_stock:10 db in
    let buyer i ctx =
      ignore (Inventory.place_order inv ctx ~product:"p0" ~qty:3);
      ignore i;
      Value.unit
    in
    let config =
      let p = open_protocol db in
      {
        (Engine.default_config p) with
        Engine.strategy = Engine.Random_pick (Rng.create ~seed);
      }
    in
    let out =
      Engine.run ~config db ~protocol:config.Engine.protocol
        (List.init 6 (fun i -> (i + 1, Printf.sprintf "b%d" (i + 1), buyer i)))
    in
    let accepted = Inventory.pending_orders inv in
    if
      List.length out.Engine.committed <> 6
      || Inventory.stock_level inv 0 <> 10 - (3 * accepted)
      || Inventory.stock_level inv 0 < 0
      || not (Serializability.oo_serializable out.Engine.history)
    then ok := false
  done;
  check_bool "all seeds consistent" true !ok

let suites =
  [
    ( "inventory",
      [
        Alcotest.test_case "orders commute on ample stock" `Quick
          test_orders_commute_on_ample_stock;
        Alcotest.test_case "insufficient stock rejected softly" `Quick
          test_insufficient_stock_rejected_softly;
        Alcotest.test_case "unknown product" `Quick test_unknown_product;
        Alcotest.test_case "fulfilment is FIFO" `Quick test_fulfilment_fifo;
        Alcotest.test_case "report conflicts with orders" `Quick
          test_report_conflicts_with_orders;
        Alcotest.test_case "scripted interleaving" `Quick
          test_scripted_interleaving;
        Alcotest.test_case "contended stock invariants" `Quick
          test_contended_stock_keeps_invariants;
      ] );
  ]
