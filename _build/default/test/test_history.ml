(* Unit tests for histories. *)

open Ooser_core

let check_bool = Alcotest.(check bool)
let o = Obj_id.v

let two_txns () =
  let t1 =
    Call_tree.Build.(
      top ~n:1
        [ call (o "C") "incr" [ call (o "P") "read" []; call (o "P") "write" [] ] ])
  in
  let t2 =
    Call_tree.Build.(
      top ~n:2
        [ call (o "C") "incr" [ call (o "P") "read" []; call (o "P") "write" [] ] ])
  in
  (t1, t2)

let reg = Commutativity.uniform Commutativity.all_conflict

let test_serial_history () =
  let t1, t2 = two_txns () in
  let h = History.of_serial ~tops:[ t1; t2 ] ~commut:reg in
  check_bool "valid" true (History.validate h = Ok ());
  Alcotest.(check int) "order covers primitives" 4 (List.length (History.order h));
  (* serial order: T1's primitives first *)
  let tops_in_order = List.map Action_id.top (History.order h) in
  Alcotest.(check (list int)) "serial" [ 1; 1; 2; 2 ] tops_in_order

let test_validate_rejects () =
  let t1, t2 = two_txns () in
  let p1 = Action_id.v ~top:1 ~path:[ 1; 1 ] in
  let p2 = Action_id.v ~top:1 ~path:[ 1; 2 ] in
  let q1 = Action_id.v ~top:2 ~path:[ 1; 1 ] in
  let q2 = Action_id.v ~top:2 ~path:[ 1; 2 ] in
  let mk order = History.v ~tops:[ t1; t2 ] ~order ~commut:reg in
  check_bool "missing primitive" true
    (match History.validate (mk [ p1; p2; q1 ]) with
    | Error _ -> true
    | Ok () -> false);
  check_bool "duplicate" true
    (match History.validate (mk [ p1; p1; p2; q1; q2 ]) with
    | Error _ -> true
    | Ok () -> false);
  check_bool "non-primitive in order" true
    (match
       History.validate (mk [ Action_id.v ~top:1 ~path:[ 1 ]; p1; p2; q1; q2 ])
     with
    | Error _ -> true
    | Ok () -> false);
  check_bool "interleaved ok" true
    (History.validate (mk [ p1; q1; p2; q2 ]) = Ok ())

let test_spans () =
  let t1, t2 = two_txns () in
  let p1 = Action_id.v ~top:1 ~path:[ 1; 1 ] in
  let p2 = Action_id.v ~top:1 ~path:[ 1; 2 ] in
  let q1 = Action_id.v ~top:2 ~path:[ 1; 1 ] in
  let q2 = Action_id.v ~top:2 ~path:[ 1; 2 ] in
  let h = History.v ~tops:[ t1; t2 ] ~order:[ p1; q1; p2; q2 ] ~commut:reg in
  let spans = History.span_map h in
  let span id = Action_id.Map.find id spans in
  Alcotest.(check (pair int int)) "primitive span" (0, 0) (span p1);
  Alcotest.(check (pair int int))
    "method span" (0, 2)
    (span (Action_id.v ~top:1 ~path:[ 1 ]));
  Alcotest.(check (pair int int)) "root span" (1, 3) (span (Action_id.root 2));
  Alcotest.(check (pair int int)) "q2 span" (3, 3) (span q2)

let test_is_serial () =
  let t1, t2 = two_txns () in
  let serial = History.of_serial ~tops:[ t1; t2 ] ~commut:reg in
  check_bool "serial order" true (History.is_serial serial);
  let p1 = Action_id.v ~top:1 ~path:[ 1; 1 ] in
  let p2 = Action_id.v ~top:1 ~path:[ 1; 2 ] in
  let q1 = Action_id.v ~top:2 ~path:[ 1; 1 ] in
  let q2 = Action_id.v ~top:2 ~path:[ 1; 2 ] in
  let interleaved =
    History.v ~tops:[ t1; t2 ] ~order:[ p1; q1; p2; q2 ] ~commut:reg
  in
  check_bool "interleaved order" false (History.is_serial interleaved);
  (* serial flag agrees with the per-object Def. 8 verdicts: for the
     serial run every object is serial *)
  let v = Serializability.check serial in
  check_bool "objects serial" true
    (List.for_all (fun ov -> ov.Serializability.serial) v.Serializability.objects);
  let v' = Serializability.check interleaved in
  check_bool "some object non-serial" true
    (List.exists
       (fun ov -> not ov.Serializability.serial)
       v'.Serializability.objects)

let test_top_ids () =
  let t1, t2 = two_txns () in
  let h = History.of_serial ~tops:[ t1; t2 ] ~commut:reg in
  Alcotest.(check (list string))
    "top ids" [ "T1"; "T2" ]
    (List.map Action_id.to_string (History.top_ids h))

let suites =
  [
    ( "history",
      [
        Alcotest.test_case "serial history" `Quick test_serial_history;
        Alcotest.test_case "validation rejections" `Quick test_validate_rejects;
        Alcotest.test_case "span computation" `Quick test_spans;
        Alcotest.test_case "is_serial (Def. 8)" `Quick test_is_serial;
        Alcotest.test_case "top ids" `Quick test_top_ids;
      ] );
  ]
