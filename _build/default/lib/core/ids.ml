(* Identifiers for objects, actions, and processes.

   Action identifiers follow the paper's hierarchical numbering (Def. 2):
   the action [a_{i w}] of top-level transaction [T_i] is identified by the
   index [i] and the path [w] of child positions from the root.  Virtual
   duplicates introduced by the system extension (Def. 5) carry a virtual
   rank so they never collide with real actions. *)

module Obj_id = struct
  type t = { name : string; rank : int }

  let v name = { name; rank = 0 }
  let name t = t.name
  let rank t = t.rank
  let is_virtual t = t.rank > 0
  let virtualize t ~rank = { t with rank }
  let original t = { t with rank = 0 }

  let compare a b =
    match String.compare a.name b.name with
    | 0 -> Int.compare a.rank b.rank
    | c -> c

  let equal a b = compare a b = 0

  let to_string t =
    if t.rank = 0 then t.name else t.name ^ String.make t.rank '\''

  let pp ppf t = Fmt.string ppf (to_string t)

  module Ord = struct
    type nonrec t = t

    let compare = compare
  end

  module Set = Set.Make (Ord)
  module Map = Map.Make (Ord)
end

module Process_id = struct
  type t = { top : int; branch : int }

  let v ~top ~branch = { top; branch }
  let main top = { top; branch = 0 }
  let top t = t.top
  let branch t = t.branch

  let compare a b =
    match Int.compare a.top b.top with
    | 0 -> Int.compare a.branch b.branch
    | c -> c

  let equal a b = compare a b = 0

  let to_string t =
    if t.branch = 0 then Printf.sprintf "p%d" t.top
    else Printf.sprintf "p%d.%d" t.top t.branch

  let pp ppf t = Fmt.string ppf (to_string t)
end

module Action_id = struct
  type t = { top : int; path : int list; virt : int }

  let root top = { top; path = []; virt = 0 }
  let child t i = { t with path = t.path @ [ i ] }
  let v ~top ~path = { top; path; virt = 0 }
  let virtualize t ~rank = { t with virt = rank }
  let is_virtual t = t.virt > 0
  let devirtualize t = { t with virt = 0 }
  let top t = t.top
  let path t = t.path
  let depth t = List.length t.path
  let is_root t = t.path = []

  let parent t =
    match List.rev t.path with
    | [] -> None
    | _ :: rev -> Some { t with path = List.rev rev; virt = 0 }

  (* [is_proper_ancestor a b] holds when [a]'s path is a strict prefix of
     [b]'s path within the same top-level transaction. *)
  let is_proper_ancestor a b =
    let rec prefix xs ys =
      match (xs, ys) with
      | [], [] -> false
      | [], _ :: _ -> true
      | _ :: _, [] -> false
      | x :: xs', y :: ys' -> x = y && prefix xs' ys'
    in
    a.top = b.top && prefix a.path b.path

  let compare a b =
    match Int.compare a.top b.top with
    | 0 -> (
        match List.compare Int.compare a.path b.path with
        | 0 -> Int.compare a.virt b.virt
        | c -> c)
    | c -> c

  let equal a b = compare a b = 0

  let to_string t =
    let base =
      match t.path with
      | [] -> Printf.sprintf "T%d" t.top
      | path ->
          Printf.sprintf "a%d.%s" t.top
            (String.concat "." (List.map string_of_int path))
    in
    if t.virt = 0 then base else base ^ String.make t.virt '\''

  let pp ppf t = Fmt.string ppf (to_string t)

  module Ord = struct
    type nonrec t = t

    let compare = compare
  end

  module Set = Set.Make (Ord)
  module Map = Map.Make (Ord)
end
