(* Histories: a transaction system together with one execution of it.

   A history is the input of the serializability checkers: the set of
   top-level transactions (call trees, Defs. 2-4) and the total order in
   which their primitive actions executed.  Axiom 1 postulates that
   conflicting primitive actions are ordered; we record a total order over
   all primitives, which trivially satisfies the axiom. *)

open Ids

type t = {
  tops : Call_tree.t list;
  order : Action_id.t list;
  commut : Commutativity.registry;
}

let v ~tops ~order ~commut = { tops; order; commut }

let tops t = t.tops
let order t = t.order
let commut t = t.commut

let all_actions t = List.concat_map Call_tree.all_actions t.tops
let all_primitives t = List.concat_map Call_tree.primitives t.tops

let top_ids t =
  List.map (fun tree -> Action.id (Call_tree.act tree)) t.tops

(* Program-order linearization of one tree's primitives: children are
   visited in index order, which is consistent with any precedence
   produced by the builders ([seq] orders left to right). *)
let rec serial_primitives tree =
  if Call_tree.is_primitive tree then [ Action.id (Call_tree.act tree) ]
  else List.concat_map serial_primitives (Call_tree.children tree)

let of_serial ~tops ~commut =
  { tops; order = List.concat_map serial_primitives tops; commut }

let validate t =
  let ( let* ) = Result.bind in
  let* () =
    List.fold_left
      (fun acc tree ->
        let* () = acc in
        Call_tree.validate tree)
      (Ok ()) t.tops
  in
  let* () =
    let ids = top_ids t in
    let distinct = List.sort_uniq Action_id.compare ids in
    if List.length distinct = List.length ids then Ok ()
    else Error "duplicate top-level transaction identifiers"
  in
  let prims =
    Action_id.Set.of_list (List.map Action.id (all_primitives t))
  in
  let seen =
    List.fold_left
      (fun acc id ->
        let* seen = acc in
        if not (Action_id.Set.mem id prims) then
          Error (Fmt.str "order mentions non-primitive %a" Action_id.pp id)
        else if Action_id.Set.mem id seen then
          Error (Fmt.str "order mentions %a twice" Action_id.pp id)
        else Ok (Action_id.Set.add id seen))
      (Ok Action_id.Set.empty) t.order
  in
  let* seen = seen in
  if Action_id.Set.equal seen prims then Ok ()
  else
    Error
      (Fmt.str "order misses %d primitive action(s)"
         (Action_id.Set.cardinal (Action_id.Set.diff prims seen)))

(* Def. 8 at system level: the execution is serial when the transactions'
   primitive spans do not interleave. *)
let is_serial t =
  let spans = Hashtbl.create 8 in
  List.iteri
    (fun pos id ->
      let top = Action_id.top id in
      let lo, hi =
        match Hashtbl.find_opt spans top with
        | Some (l, h) -> (min l pos, max h pos)
        | None -> (pos, pos)
      in
      Hashtbl.replace spans top (lo, hi))
    t.order;
  let sorted =
    Hashtbl.fold (fun _ s acc -> s :: acc) spans [] |> List.sort compare
  in
  let rec disjoint = function
    | (_, hi) :: ((lo', _) :: _ as rest) -> hi < lo' && disjoint rest
    | _ -> true
  in
  disjoint sorted

let position_map t =
  let _, m =
    List.fold_left
      (fun (i, m) id -> (i + 1, Action_id.Map.add id i m))
      (0, Action_id.Map.empty)
      t.order
  in
  m

(* Span of every action: the positions of its first and last primitive
   descendant in the execution order.  Actions whose subtree contains no
   primitive (impossible for well-formed trees) are absent. *)
let span_map t =
  let pos = position_map t in
  let rec go acc tree =
    let acc, span_children =
      List.fold_left
        (fun (acc, spans) c ->
          let acc = go acc c in
          match Action_id.Map.find_opt (Action.id (Call_tree.act c)) acc with
          | Some s -> (acc, s :: spans)
          | None -> (acc, spans))
        (acc, []) (Call_tree.children tree)
    in
    let id = Action.id (Call_tree.act tree) in
    if Call_tree.is_primitive tree then
      match Action_id.Map.find_opt id pos with
      | Some p -> Action_id.Map.add id (p, p) acc
      | None -> acc
    else
      match span_children with
      | [] -> acc
      | (lo0, hi0) :: rest ->
          let lo, hi =
            List.fold_left
              (fun (lo, hi) (l, h) -> (min lo l, max hi h))
              (lo0, hi0) rest
          in
          Action_id.Map.add id (lo, hi) acc
  in
  List.fold_left go Action_id.Map.empty t.tops

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@,order: %a@]"
    (Fmt.list ~sep:Fmt.cut Call_tree.pp)
    t.tops
    (Fmt.list ~sep:(Fmt.any " ") Action_id.pp)
    t.order
