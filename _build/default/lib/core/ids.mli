(** Identifiers for objects, actions, and processes.

    Action identifiers follow the paper's hierarchical numbering (Def. 2):
    the action [a_{i w}] of top-level transaction [T_i] is identified by
    the transaction index [i] and the path [w] of child positions from the
    root.  Virtual duplicates introduced by the system extension (Def. 5)
    carry a virtual rank so they never collide with real identifiers. *)

(** Database object identifiers.  A virtual object [O'] (Def. 5) is the
    original identifier with a positive rank; [O''] has rank 2, etc. *)
module Obj_id : sig
  type t

  val v : string -> t
  (** [v name] is the (non-virtual) object named [name]. *)

  val name : t -> string
  (** Base name, without virtual primes. *)

  val rank : t -> int
  (** 0 for real objects, [k] for the [k]-th virtual duplicate. *)

  val is_virtual : t -> bool

  val virtualize : t -> rank:int -> t
  (** The [rank]-th virtual duplicate of this object. *)

  val original : t -> t
  (** Strip virtual rank. *)

  val compare : t -> t -> int
  val equal : t -> t -> bool

  val to_string : t -> string
  (** E.g. ["Page4712"], ["O1'"]. *)

  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
end

(** Process identifiers (Def. 9).  A top-level transaction may consist of
    several parallel processes; actions of the same process never
    conflict. *)
module Process_id : sig
  type t

  val v : top:int -> branch:int -> t
  val main : int -> t
  (** [main i] is the single sequential process of transaction [T_i]. *)

  val top : t -> int
  val branch : t -> int
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

(** Hierarchical action identifiers. *)
module Action_id : sig
  type t

  val root : int -> t
  (** [root i] identifies the top-level transaction [T_i] itself. *)

  val child : t -> int -> t
  (** [child t i] is the [i]-th (1-based, by convention) action called by
      [t]. *)

  val v : top:int -> path:int list -> t
  val virtualize : t -> rank:int -> t
  (** Identifier for a virtual duplicate (Def. 5). *)

  val is_virtual : t -> bool
  val devirtualize : t -> t
  val top : t -> int
  val path : t -> int list

  val depth : t -> int
  (** 0 for top-level transactions. *)

  val is_root : t -> bool

  val parent : t -> t option
  (** Identifier of the (non-virtual) calling action; [None] at the root. *)

  val is_proper_ancestor : t -> t -> bool
  (** [is_proper_ancestor a b]: [a] calls [b] directly or indirectly
      ([a →+ b] with [a ≠ b]). *)

  val compare : t -> t -> int
  val equal : t -> t -> bool

  val to_string : t -> string
  (** E.g. ["T3"], ["a3.1.2"], ["a3.1.2'"]. *)

  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
end
