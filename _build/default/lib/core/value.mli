(** Method parameter and result values (Def. 1: parameterized methods).

    A small dynamic value universe so that commutativity specifications can
    inspect arguments (e.g. escrow tests on amounts, key equality on B+
    tree operations). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val to_bool : t -> bool option
val to_int : t -> int option
val to_str : t -> string option

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an [Int]. *)

val to_str_exn : t -> string
(** @raise Invalid_argument if the value is not a [Str]. *)

val to_bool_exn : t -> bool
(** @raise Invalid_argument if the value is not a [Bool]. *)

val to_list_exn : t -> t list
(** @raise Invalid_argument if the value is not a [List]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
