(* System extension with virtual objects (Def. 5, Example 3 / Fig. 6).

   When a transaction [t] calls an action [a] (directly or indirectly) and
   both access the same object [O], the call path forms a cycle through
   [O].  The extension breaks it: [a] is moved to a virtual object [O'];
   all other actions on [O] are virtually duplicated onto [O'] and linked
   to their originals by call edges, so that dependencies arising at the
   virtual object are inherited to the original object.

   Implementation choices (documented deviations, see DESIGN.md):
   - The virtual rank of an action is the number of its proper ancestors
     accessing the same (original) object; rank-k actions of *all*
     transactions share the virtual object [O^k].  This preserves
     conflicts between re-entrant actions of different transactions, which
     per-action virtual objects would lose.
   - Every action of rank < k on [O] is duplicated onto [O^k].  Def. 5
     excludes the ancestor [t] from duplication; we instead skip
     ancestor/descendant pairs of the same transaction at conflict time
     ([same_call_path]), which is equivalent for sequential transactions
     and well-defined when several transactions share [O^k]. *)

open Ids

type t = {
  history : History.t;
  actions : Action.t Action_id.Map.t;
  caller : Action_id.t Action_id.Map.t;
  acts_of : Action_id.Set.t Obj_id.Map.t;
  leaves : Action_id.Set.t;
  span : (int * int) Action_id.Map.t;
  prog_rel : Action.Rel.t;
  virtual_objects : Obj_id.t list;
}

let history t = t.history

let action t id =
  match Action_id.Map.find_opt id t.actions with
  | Some a -> a
  | None -> invalid_arg (Fmt.str "Extension.action: unknown %a" Action_id.pp id)

let caller_of t id = Action_id.Map.find_opt id t.caller
let acts_of t o =
  match Obj_id.Map.find_opt o t.acts_of with
  | Some s -> s
  | None -> Action_id.Set.empty

let objects t = List.map fst (Obj_id.Map.bindings t.acts_of)
let virtual_objects t = t.virtual_objects
let is_leaf t id = Action_id.Set.mem id t.leaves

let span_of t id = Action_id.Map.find_opt id t.span
let prog_rel t = t.prog_rel

let same_call_path a b =
  let a = Action_id.devirtualize a and b = Action_id.devirtualize b in
  Action_id.equal a b
  || Action_id.is_proper_ancestor a b
  || Action_id.is_proper_ancestor b a

(* Transactions on O (Def. 6): the actions calling an action on O. *)
let transactions_on t o =
  Action_id.Set.fold
    (fun a acc ->
      match caller_of t a with
      | Some c -> Action_id.Set.add c acc
      | None -> acc)
    (acts_of t o) Action_id.Set.empty

let extend h =
  let trees = History.tops h in
  (* Base action map and caller map from the call trees. *)
  let base_actions =
    List.fold_left
      (fun m a -> Action_id.Map.add (Action.id a) a m)
      Action_id.Map.empty (History.all_actions h)
  in
  let base_caller =
    List.fold_left
      (fun m tree ->
        Action_id.Map.union (fun _ a _ -> Some a) m (Call_tree.caller_map tree))
      Action_id.Map.empty trees
  in
  let span = History.span_map h in
  let base_leaves =
    Action_id.Set.of_list (List.map Action.id (History.all_primitives h))
  in
  (* Virtual rank: number of proper ancestors on the same original object. *)
  let rank_of id act =
    let obj = Obj_id.original (Action.obj act) in
    let rec count cur n =
      match Action_id.Map.find_opt cur base_caller with
      | None -> n
      | Some p ->
          let n =
            match Action_id.Map.find_opt p base_actions with
            | Some pa when Obj_id.equal (Obj_id.original (Action.obj pa)) obj ->
                n + 1
            | _ -> n
          in
          count p n
    in
    count id 0
  in
  let ranks =
    Action_id.Map.mapi (fun id act -> rank_of id act) base_actions
  in
  (* Move rank-k actions to the shared virtual object O^k. *)
  let moved_actions =
    Action_id.Map.mapi
      (fun id act ->
        let k = Action_id.Map.find id ranks in
        if k = 0 then act
        else { act with Action.obj = Obj_id.virtualize (Action.obj act) ~rank:k })
      base_actions
  in
  let max_rank_of_obj =
    Action_id.Map.fold
      (fun id act m ->
        let o = Obj_id.original (Action.obj act) in
        let k = Action_id.Map.find id ranks in
        let cur = match Obj_id.Map.find_opt o m with Some v -> v | None -> 0 in
        if k > cur then Obj_id.Map.add o k m else m)
      base_actions Obj_id.Map.empty
  in
  (* Duplicates: every rank-j action on O is duplicated onto O^k, j < k. *)
  let duplicates =
    Obj_id.Map.fold
      (fun o max_rank acc ->
        if max_rank = 0 then acc
        else
          Action_id.Map.fold
            (fun id act acc ->
              if
                not
                  (Obj_id.equal (Obj_id.original (Action.obj act)) o)
              then acc
              else
                let j = Action_id.Map.find id ranks in
                let rec add_dups k acc =
                  if k > max_rank then acc
                  else
                    let dup =
                      Action.with_virtual
                        (Action_id.Map.find id moved_actions)
                        ~rank:k
                        ~obj:(Obj_id.virtualize o ~rank:k)
                    in
                    add_dups (k + 1) ((id, dup) :: acc)
                in
                add_dups (j + 1) acc)
            base_actions acc)
      max_rank_of_obj []
  in
  let actions =
    List.fold_left
      (fun m (_, dup) -> Action_id.Map.add (Action.id dup) dup m)
      moved_actions duplicates
  in
  let caller =
    List.fold_left
      (fun m (orig, dup) -> Action_id.Map.add (Action.id dup) orig m)
      base_caller duplicates
  in
  let span =
    List.fold_left
      (fun m (orig, dup) ->
        match Action_id.Map.find_opt orig m with
        | Some s -> Action_id.Map.add (Action.id dup) s m
        | None -> m)
      span duplicates
  in
  let leaves =
    List.fold_left
      (fun s (_, dup) -> Action_id.Set.add (Action.id dup) s)
      base_leaves duplicates
  in
  let acts_of =
    Action_id.Map.fold
      (fun id act m ->
        let o = Action.obj act in
        let cur =
          match Obj_id.Map.find_opt o m with
          | Some s -> s
          | None -> Action_id.Set.empty
        in
        Obj_id.Map.add o (Action_id.Set.add id cur) m)
      actions Obj_id.Map.empty
  in
  let prog_rel =
    List.fold_left
      (fun rel tree ->
        List.fold_left
          (fun rel (a, a') -> Action.Rel.add a a' rel)
          rel
          (Call_tree.program_order_pairs tree))
      Action.Rel.empty trees
  in
  let virtual_objects =
    Obj_id.Map.fold
      (fun o max_rank acc ->
        let rec go k acc =
          if k > max_rank then acc
          else go (k + 1) (Obj_id.virtualize o ~rank:k :: acc)
        in
        go 1 acc)
      max_rank_of_obj []
  in
  { history = h; actions; caller; acts_of; leaves; span; prog_rel; virtual_objects }
