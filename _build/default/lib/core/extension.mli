(** System extension with virtual objects (Def. 5, Example 3 / Fig. 6).

    When a transaction calls an action (directly or indirectly) and both
    access the same object, the extension breaks the call cycle: the inner
    action moves to a virtual object; all other actions on the object are
    virtually duplicated onto the virtual object and linked to their
    originals by call edges, so dependencies arising at the virtual object
    are inherited to the original one.

    The extension also precomputes the indexes the checker needs: the
    direct-call relation, the per-object action sets [ACT_O], the
    execution spans, and the program-order relation n₃ (Def. 7). *)

open Ids

type t

val extend : History.t -> t
(** Extend a history per Def. 5.  Idempotent on histories without call
    cycles (no virtual objects are created). *)

val history : t -> History.t

val action : t -> Action_id.t -> Action.t
(** @raise Invalid_argument on unknown identifiers. *)

val caller_of : t -> Action_id.t -> Action_id.t option
(** Direct caller ([t → a]); virtual duplicates are called by their
    original.  [None] only for top-level transactions. *)

val acts_of : t -> Obj_id.t -> Action_id.Set.t
(** [ACT_O]: the actions on an object, after extension. *)

val transactions_on : t -> Obj_id.t -> Action_id.Set.t
(** [TRA_O] (Def. 6): the actions that call an action on the object. *)

val objects : t -> Obj_id.t list
(** All objects with at least one action, virtual ones included. *)

val virtual_objects : t -> Obj_id.t list

val is_leaf : t -> Action_id.t -> bool
(** Primitive actions (Def. 3) and virtual duplicates: the actions whose
    conflicting executions are ordered directly (Axiom 1). *)

val span_of : t -> Action_id.t -> (int * int) option
(** First/last primitive position of the action's subtree; virtual
    duplicates inherit their original's span. *)

val same_call_path : Action_id.t -> Action_id.t -> bool
(** Whether two actions (devirtualised) lie on one call path of the same
    transaction — such pairs are never in conflict at virtual objects,
    mirroring Def. 5's exclusion of the calling transaction. *)

val prog_rel : t -> Action.Rel.t
(** The program-order (object precedence, Def. 7) relation n₃ over all
    actions. *)
