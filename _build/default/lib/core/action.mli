(** Actions: executed messages on objects (Defs. 1–3).

    A message [O.m(params)] sent to object [O] becomes an action once it is
    numbered within a transaction's call tree.  Every action carries the
    process it belongs to (Def. 9): actions of the same process never
    conflict. *)

open Ids

type t = {
  id : Action_id.t;
  obj : Obj_id.t;  (** object the message is sent to *)
  meth : string;  (** method name *)
  args : Value.t list;  (** parameters *)
  process : Process_id.t;
}

val v :
  id:Action_id.t ->
  obj:Obj_id.t ->
  meth:string ->
  ?args:Value.t list ->
  process:Process_id.t ->
  unit ->
  t

val id : t -> Action_id.t
val obj : t -> Obj_id.t
val meth : t -> string
val args : t -> Value.t list
val process : t -> Process_id.t

val is_virtual : t -> bool
(** True for virtual duplicates created by the system extension (Def. 5). *)

val with_virtual : t -> rank:int -> obj:Obj_id.t -> t
(** Virtual duplicate of this action on the virtual object [obj]. *)

val compare : t -> t -> int
(** By identifier. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Binary relations over actions, keyed by {!Ids.Action_id}. *)
module Rel : Digraph.S with type vertex = Action_id.t

(** Maps keyed by ordered pairs of action identifiers (dependency
    edges). *)
module Pair_map : Map.S with type key = Action_id.t * Action_id.t
