(** Human-readable explanations of schedules and verdicts.

    Every dependency edge computed by {!Schedule.compute} carries its
    provenance; this module renders the full inheritance chain of an edge
    down to its Axiom-1 roots, and explains a rejection by walking the
    offending cycle edge by edge. *)

open Ids

val explain_edge :
  Schedule.t ->
  Obj_id.t ->
  Action_id.t * Action_id.t ->
  depth:int ->
  Format.formatter ->
  unit
(** Trace one edge of the object's combined dependency relation (action,
    transaction, or added) to its roots. *)

val explain_cycle :
  Schedule.t -> Obj_id.t -> Action_id.t list -> Format.formatter -> unit

val pp : Format.formatter -> Schedule.t * Serializability.verdict -> unit
(** Verdict per object, with cycle explanations for the failures. *)

val explain : History.t -> string
(** One-call convenience: compute, check, render. *)
