(* Object-oriented transactions as call trees (Def. 2, Example 2 / Fig. 5).

   A node is an action; its children are the action set called by it; the
   precedence partial order within an action set is given by index pairs.
   Leaves are primitive actions (Def. 3). *)

open Ids

type t = { act : Action.t; children : t list; prec : (int * int) list }

let v ?(prec = []) act children = { act; children; prec }

let seq act children =
  let n = List.length children in
  let rec chain i = if i + 1 >= n then [] else (i, i + 1) :: chain (i + 1) in
  { act; children; prec = chain 0 }

let par act children = { act; children; prec = [] }

let act t = t.act
let children t = t.children
let prec t = t.prec
let is_primitive t = t.children = []

let rec fold f acc t = List.fold_left (fold f) (f acc t) t.children

let all_actions t = List.rev (fold (fun acc n -> n.act :: acc) [] t)

let primitives t =
  List.rev
    (fold (fun acc n -> if is_primitive n then n.act :: acc else acc) [] t)

let size t = fold (fun n _ -> n + 1) 0 t

let rec height t =
  match t.children with
  | [] -> 0
  | cs -> 1 + List.fold_left (fun m c -> max m (height c)) 0 cs

let rec find t id =
  if Action_id.equal (Action.id t.act) id then Some t
  else
    List.fold_left
      (fun found c -> match found with Some _ -> found | None -> find c id)
      None t.children

let caller_map t =
  let rec go parent acc node =
    let acc =
      match parent with
      | None -> acc
      | Some pid -> Action_id.Map.add (Action.id node.act) pid acc
    in
    List.fold_left (go (Some (Action.id node.act))) acc node.children
  in
  go None Action_id.Map.empty t

(* Transitive closure of the precedence pairs of one action set, as index
   pairs.  [prec] is small, so a simple fixpoint suffices. *)
let closed_prec prec =
  let module IP = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let rec fix s =
    let s' =
      IP.fold
        (fun (i, j) acc ->
          IP.fold
            (fun (j', k) acc -> if j = j' then IP.add (i, k) acc else acc)
            s acc)
        s s
    in
    if IP.cardinal s' = IP.cardinal s then s else fix s'
  in
  IP.elements (fix (IP.of_list prec))

(* Program-order pairs: (a, a') such that some ordered sibling pair
   (u before u' in an action-set precedence) has u →* a and u' →* a'.
   This is the operational reading of the object precedence relation n₃
   (Def. 7), generalised to arbitrary nesting depth: it contains both the
   "given precedences" of sibling actions and the precedences inherited
   from calling transactions. *)
let program_order_pairs t =
  let rec descendants node =
    node.act :: List.concat_map descendants node.children
  in
  let rec go acc node =
    let cs = Array.of_list node.children in
    let acc =
      List.fold_left
        (fun acc (i, j) ->
          if i < 0 || j < 0 || i >= Array.length cs || j >= Array.length cs
          then acc
          else
            let before = descendants cs.(i) and after = descendants cs.(j) in
            List.fold_left
              (fun acc a ->
                List.fold_left
                  (fun acc a' -> (Action.id a, Action.id a') :: acc)
                  acc after)
              acc before)
        acc (closed_prec node.prec)
    in
    List.fold_left go acc node.children
  in
  List.rev (go [] t)

let validate t =
  let ( let* ) = Result.bind in
  let rec check node =
    let n = List.length node.children in
    let* () =
      if
        List.for_all (fun (i, j) -> i >= 0 && j >= 0 && i < n && j < n) node.prec
      then Ok ()
      else
        Error
          (Fmt.str "%a: precedence index out of range"
             Ids.Action_id.pp (Action.id node.act))
    in
    let* () =
      if List.exists (fun (i, j) -> i = j) (closed_prec node.prec) then
        Error
          (Fmt.str "%a: precedence relation is cyclic" Ids.Action_id.pp
             (Action.id node.act))
      else Ok ()
    in
    let* () =
      List.fold_left
        (fun acc c ->
          let* () = acc in
          match Action_id.parent (Action.id c.act) with
          | Some p when Action_id.equal p (Action.id node.act) -> Ok ()
          | _ ->
              Error
                (Fmt.str "%a: child %a has inconsistent identifier"
                   Ids.Action_id.pp (Action.id node.act) Ids.Action_id.pp
                   (Action.id c.act)))
        (Ok ()) node.children
    in
    List.fold_left
      (fun acc c ->
        let* () = acc in
        check c)
      (Ok ()) node.children
  in
  check t

let rec pp ppf t =
  if is_primitive t then Action.pp ppf t.act
  else
    Fmt.pf ppf "@[<v 2>%a@,%a@]" Action.pp t.act
      (Fmt.list ~sep:Fmt.cut pp)
      t.children

(* Convenience builder: describe the call structure with object/method
   pairs; identifiers and processes are assigned automatically. *)
module Build = struct
  type spec = {
    b_obj : Obj_id.t;
    b_meth : string;
    b_args : Value.t list;
    b_branch : int option;
    b_prec : (int * int) list option;
    b_children : spec list;
  }

  let call ?(args = []) ?branch ?prec obj meth children =
    {
      b_obj = obj;
      b_meth = meth;
      b_args = args;
      b_branch = branch;
      b_prec = prec;
      b_children = children;
    }

  let default_sys = Obj_id.v "S"

  let top ?(sys = default_sys) ?(name = "txn") ?(args = []) ?prec ~n specs =
    let rec build id process spec =
      let process =
        match spec.b_branch with
        | None -> process
        | Some b -> Process_id.v ~top:n ~branch:b
      in
      let act =
        Action.v ~id ~obj:spec.b_obj ~meth:spec.b_meth ~args:spec.b_args
          ~process ()
      in
      let children =
        List.mapi
          (fun i c -> build (Action_id.child id (i + 1)) process c)
          spec.b_children
      in
      match spec.b_prec with
      | Some prec -> v ~prec act children
      | None -> seq act children
    in
    let root_id = Action_id.root n in
    let process = Process_id.main n in
    let root_act = Action.v ~id:root_id ~obj:sys ~meth:name ~args ~process () in
    let children =
      List.mapi (fun i c -> build (Action_id.child root_id (i + 1)) process c)
        specs
    in
    match prec with
    | Some prec -> v ~prec root_act children
    | None -> seq root_act children
end
