(** Object-oriented transactions as call trees (Def. 2, Example 2/Fig. 5).

    A node is an action; its children form the action set called directly
    by it; the precedence partial order within an action set is given by
    pairs of child indices (0-based, [(i, j)] meaning child [i] precedes
    child [j]).  Leaves are primitive actions (Def. 3). *)

open Ids

type t = { act : Action.t; children : t list; prec : (int * int) list }

val v : ?prec:(int * int) list -> Action.t -> t list -> t
(** [v act children] with an explicit precedence relation (default: none,
    i.e. all children may run in parallel). *)

val seq : Action.t -> t list -> t
(** All children totally ordered left to right (the common case: the
    "left to right order of arcs" of Fig. 5). *)

val par : Action.t -> t list -> t
(** No precedence between children. *)

val act : t -> Action.t
val children : t -> t list
val prec : t -> (int * int) list

val is_primitive : t -> bool
(** An action is primitive if it calls no other action (Def. 3). *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Preorder fold over all nodes. *)

val all_actions : t -> Action.t list
(** All actions of the oo-transaction, preorder. *)

val primitives : t -> Action.t list

val size : t -> int
(** Number of actions. *)

val height : t -> int
(** 0 for a primitive action. *)

val find : t -> Action_id.t -> t option

val caller_map : t -> Action_id.t Action_id.Map.t
(** Maps each non-root action to the action that calls it directly. *)

val program_order_pairs : t -> (Action_id.t * Action_id.t) list
(** All pairs [(a, a')] such that some ordered sibling pair [u] before [u']
    in an action-set precedence satisfies [u →* a] and [u' →* a'].  This is
    the operational reading of the object precedence relation n₃ (Def. 7),
    generalised to arbitrary nesting depth. *)

val validate : t -> (unit, string) result
(** Checks identifier consistency, precedence index ranges, and that each
    precedence relation is a (strict) partial order. *)

val pp : Format.formatter -> t -> unit

(** Convenience builder: describe the call structure with object/method
    pairs; identifiers and processes are assigned automatically. *)
module Build : sig
  type spec

  val call :
    ?args:Value.t list ->
    ?branch:int ->
    ?prec:(int * int) list ->
    Obj_id.t ->
    string ->
    spec list ->
    spec
  (** A call of [meth] on [obj].  [branch] starts a new parallel process
      (Def. 9) rooted at this action; [prec] overrides the default
      sequential ordering of the children. *)

  val default_sys : Obj_id.t
  (** The system object [S] (Def. 4). *)

  val top :
    ?sys:Obj_id.t ->
    ?name:string ->
    ?args:Value.t list ->
    ?prec:(int * int) list ->
    n:int ->
    spec list ->
    t
  (** [top ~n specs] builds top-level transaction [T_n] on the system
      object, its children being [specs] executed sequentially ([prec]
      overrides the ordering). *)
end
