(** Baseline serializability notions the paper compares against (§1, §2).

    - Conventional conflict-order-preserving serializability: every
      conflict between primitive actions is inherited directly to the
      top-level transactions, ignoring intermediate method semantics.
    - Multi-layer serializability ([1, 3, 11, 23, 24] in the paper):
      levels are call-tree depths; conflicting operations of one level
      inherit their order to the level above, stopping when the parents
      commute.  Defined for layered histories (all leaves at the same
      depth). *)

open Ids

(** A serialization graph with its (possible) cycle. *)
type sg = { graph : Action.Rel.t; cycle : Action_id.t list option }

val serializable : sg -> bool

val conventional_sg : History.t -> sg
(** Serialization graph over top-level transactions from primitive-level
    conflicts only. *)

val conventional_serializable : History.t -> bool

type layered_verdict = {
  layered : bool;  (** whether all leaves sit at the same depth *)
  level_graphs : (int * sg) list;
  ml_serializable : bool;
}

val is_layered : History.t -> bool
val multilevel_verdict : History.t -> layered_verdict
val multilevel_serializable : History.t -> bool

val conflicting_primitive_pairs : History.t -> int
(** Raw count of conflicting primitive access pairs between different
    top-level transactions. *)

val inter_transaction_primitive_pairs : History.t -> int
(** All primitive pairs between different transactions (rate
    denominator). *)

val conflict_pairs : History.t -> [ `Conventional | `Oo ] -> int
(** The quantity behind the paper's headline claim: the number of
    inter-transaction dependency edges that reach the top level —
    [`Conventional] from raw primitive conflicts, [`Oo] after semantic
    inheritance with commutativity. *)
