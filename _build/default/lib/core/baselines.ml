(* Baseline serializability notions the paper compares against (§1, §2):

   - conventional conflict-order-preserving serializability: every
     conflict between primitive actions is inherited directly to the
     top-level transactions, ignoring the semantics of the intermediate
     methods;
   - multi-layer serializability [1, 3, 11, 23, 24]: levels are the call
     tree depths; conflicting operations of one level inherit their order
     to the operations of the level above, stopping when the parents
     commute.  Defined for layered histories (all leaves at equal
     depth). *)

open Ids

type sg = { graph : Action.Rel.t; cycle : Action_id.t list option }

let serializable sg = sg.cycle = None

(* Conventional serialization graph over top-level transactions: an edge
   Ti -> Tj whenever a primitive of Ti precedes a conflicting primitive of
   Tj.  Commutativity is consulted only at the primitive level (the
   "conventional" DBMS view of §2: pages with read/write semantics). *)
let conventional_sg h =
  let reg = History.commut h in
  let prims = History.all_primitives h in
  let pos = History.position_map h in
  let tops =
    List.map (fun t -> Action_id.root (Action_id.top (Action.id t)))
  in
  ignore tops;
  let g =
    List.fold_left
      (fun g id -> Action.Rel.add_vertex id g)
      Action.Rel.empty (History.top_ids h)
  in
  let arr = Array.of_list prims in
  let n = Array.length arr in
  let g = ref g in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let p = arr.(i) and q = arr.(j) in
        let ti = Action_id.top (Action.id p) and tj = Action_id.top (Action.id q) in
        if
          ti <> tj
          && Obj_id.equal (Action.obj p) (Action.obj q)
          && Commutativity.conflicts reg p q
        then
          match
            ( Action_id.Map.find_opt (Action.id p) pos,
              Action_id.Map.find_opt (Action.id q) pos )
          with
          | Some pi, Some pj when pi < pj ->
              g := Action.Rel.add (Action_id.root ti) (Action_id.root tj) !g
          | _ -> ()
      end
    done
  done;
  { graph = !g; cycle = Action.Rel.find_cycle !g }

let conventional_serializable h = serializable (conventional_sg h)

(* Multi-layer serializability.  Works level by level from the leaves:
   at each level, the order of conflicting operations (inherited from
   below, or the execution order at the leaf level) must induce an acyclic
   graph; the order is inherited to the parents only when the operations
   conflict. *)

type layered_verdict = {
  layered : bool;  (* whether the history is strictly layered *)
  level_graphs : (int * sg) list;  (* per level, leaves = highest level *)
  ml_serializable : bool;
}

let is_layered h =
  let depths =
    List.map (fun a -> Action_id.depth (Action.id a)) (History.all_primitives h)
  in
  match depths with [] -> true | d :: rest -> List.for_all (( = ) d) rest

let multilevel_verdict h =
  let layered = is_layered h in
  if not layered then
    { layered; level_graphs = []; ml_serializable = false }
  else begin
    let reg = History.commut h in
    let ext = Extension.extend h in
    let pos = History.position_map h in
    let max_depth =
      List.fold_left
        (fun m a -> max m (Action_id.depth (Action.id a)))
        0 (History.all_actions h)
    in
    let actions_at d =
      List.filter
        (fun a -> Action_id.depth (Action.id a) = d)
        (List.map
           (fun a -> Extension.action ext (Action.id a))
           (History.all_actions h))
    in
    (* dependencies among level-d actions; starts at leaves with the
       execution order of conflicting leaves. *)
    let rec level_deps d =
      let acts = actions_at d in
      if d = max_depth then
        List.concat_map
          (fun a ->
            List.filter_map
              (fun a' ->
                if
                  (not (Action_id.equal (Action.id a) (Action.id a')))
                  && Obj_id.equal (Action.obj a) (Action.obj a')
                  && Commutativity.conflicts reg a a'
                then
                  match
                    ( Action_id.Map.find_opt (Action.id a) pos,
                      Action_id.Map.find_opt (Action.id a') pos )
                  with
                  | Some pa, Some pa' when pa < pa' ->
                      Some (Action.id a, Action.id a')
                  | _ -> None
                else None)
              acts)
          acts
      else
        (* inherit from below: children dependencies whose endpoints
           conflict at this level order the parents. *)
        let below = level_deps (d + 1) in
        List.filter_map
          (fun (c, c') ->
            match (Action_id.parent c, Action_id.parent c') with
            | Some p, Some p' when not (Action_id.equal p p') -> Some (p, p')
            | _ -> None)
          (List.filter
             (fun (c, c') ->
               Commutativity.conflicts reg (Extension.action ext c)
                 (Extension.action ext c'))
             below)
        |> List.sort_uniq (fun (a, b) (c, d') ->
               match Action_id.compare a c with
               | 0 -> Action_id.compare b d'
               | x -> x)
    in
    (* Order-preserving: the level-d graph also contains the program
       order between same-transaction operations of that level, as in
       order-preserving multilevel serializability. *)
    let prog_pairs_at d =
      List.concat_map
        (fun tree ->
          List.filter
            (fun (x, y) -> Action_id.depth x = d && Action_id.depth y = d)
            (Call_tree.program_order_pairs tree))
        (History.tops h)
    in
    let graphs =
      List.init (max_depth + 1) (fun d ->
          let deps = level_deps d @ prog_pairs_at d in
          let g = Action.Rel.of_edges deps in
          (d, { graph = g; cycle = Action.Rel.find_cycle g }))
    in
    let ok = List.for_all (fun (_, sg) -> serializable sg) graphs in
    { layered; level_graphs = graphs; ml_serializable = ok }
  end

let multilevel_serializable h = (multilevel_verdict h).ml_serializable

(* Raw count of conflicting primitive access pairs between different
   top-level transactions — the denominator material for the paper's
   "rate of conflicting accesses". *)
let conflicting_primitive_pairs h =
  let reg = History.commut h in
  let prims = Array.of_list (History.all_primitives h) in
  let n = Array.length prims in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = prims.(i) and q = prims.(j) in
      if
        Action_id.top (Action.id p) <> Action_id.top (Action.id q)
        && Commutativity.conflicts reg p q
      then incr count
    done
  done;
  !count

(* Total primitive pairs between different transactions (for rates). *)
let inter_transaction_primitive_pairs h =
  let prims = Array.of_list (History.all_primitives h) in
  let n = Array.length prims in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        Action_id.top (Action.id prims.(i))
        <> Action_id.top (Action.id prims.(j))
      then incr count
    done
  done;
  !count

(* Count of conflicting access pairs — the quantity behind the paper's
   headline claim.  [`Conventional] counts all primitive-level conflicting
   pairs between different top-level transactions; [`Oo] counts the
   conflicting pairs that actually reach the top level after semantic
   inheritance (dependencies between distinct top-level transactions in
   any transaction dependency relation). *)
let conflict_pairs h = function
  | `Conventional ->
      let sg = conventional_sg h in
      Action.Rel.cardinal sg.graph
  | `Oo ->
      let sched = Schedule.compute h in
      let g =
        List.fold_left
          (fun g s ->
            Action.Rel.fold_edges
              (fun t t' g ->
                if Action_id.is_root t && Action_id.is_root t' then
                  Action.Rel.add t t' g
                else g)
              s.Schedule.txn_dep g)
          Action.Rel.empty (Schedule.objects sched)
      in
      Action.Rel.cardinal g
