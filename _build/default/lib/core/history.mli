(** Histories: a transaction system together with one execution of it.

    A history is the input of the serializability checkers: the top-level
    transactions (call trees, Defs. 2–4), the total order in which their
    primitive actions executed (the knowledge Axiom 1 postulates), and the
    commutativity registry of the objects involved. *)

open Ids

type t

val v :
  tops:Call_tree.t list ->
  order:Action_id.t list ->
  commut:Commutativity.registry ->
  t

val tops : t -> Call_tree.t list
val order : t -> Action_id.t list
val commut : t -> Commutativity.registry

val all_actions : t -> Action.t list
val all_primitives : t -> Action.t list

val top_ids : t -> Action_id.t list

val of_serial : tops:Call_tree.t list -> commut:Commutativity.registry -> t
(** The serial execution: all primitives of the first transaction in
    program order, then the second, etc. *)

val serial_primitives : Call_tree.t -> Action_id.t list
(** Program-order linearization of one tree's primitives. *)

val validate : t -> (unit, string) result
(** Trees well-formed; the order lists exactly the primitive actions, each
    once. *)

val is_serial : t -> bool
(** Def. 8 at system level: the transactions' primitive spans do not
    interleave. *)

val position_map : t -> int Action_id.Map.t
(** Position of each primitive in the execution order. *)

val span_map : t -> (int * int) Action_id.Map.t
(** Span of every action: positions of its first and last primitive
    descendant (a primitive spans its own position twice). *)

val pp : Format.formatter -> t -> unit
