(** Commutativity of actions (Def. 9, §2).

    Every object carries a commutativity specification — "a commutativity
    matrix for every object for all their actions" — deciding for any pair
    of actions on it whether they commute or are in conflict.  The
    specification may inspect method names and parameters (escrow-style
    semantics, [9,14,17] in the paper) because two actions commute exactly
    when the effect of each is independent of their execution order.

    Two actions of the same process never conflict (Def. 9). *)

open Ids

(** Specification for one object (or one object type). *)
type spec

val name : spec -> string
val make : name:string -> (Action.t -> Action.t -> bool) -> spec

val test : spec -> Action.t -> Action.t -> bool
(** Raw query of the specification ([true] = commute), without the
    same-process rule of {!commutes}.  Useful to compose specs. *)

val all_commute : spec
(** Every pair commutes — maximal concurrency, no dependencies. *)

val all_conflict : spec
(** Every pair conflicts — degenerates to conventional serializability. *)

val of_conflict_matrix : name:string -> (string * string) list -> spec
(** Method pairs listed (symmetrically) conflict; all others commute. *)

val of_commute_matrix : name:string -> (string * string) list -> spec
(** Method pairs listed (symmetrically) commute; all others conflict. *)

val rw : reads:string list -> writes:string list -> spec
(** Classic read/write semantics: two actions conflict unless both are
    reads.  Unknown methods conservatively conflict with everything. *)

val by_key : key_of:(Action.t -> Value.t option) -> spec -> spec
(** Refine a spec: actions addressing different keys always commute;
    same-key (or keyless) pairs defer to the inner spec.  This captures the
    node-level semantics of Example 1 — inserts of different keys commute
    even when their data collide on the same page. *)

val predicate : name:string -> (Action.t -> Action.t -> bool) -> spec
(** Arbitrary commutativity test ([true] = commute). *)

val first_arg : Action.t -> Value.t option
(** Convenience [key_of] for methods whose first argument is the key. *)

(** Registries map objects to their specification.  Virtual objects
    (Def. 5) behave exactly like their originals. *)
type registry

val registry : (Obj_id.t -> spec) -> registry
(** The function receives de-virtualised identifiers. *)

val fixed : ?default:spec -> (string * spec) list -> registry
(** Lookup by object name; [default] (all-conflict) otherwise. *)

val uniform : spec -> registry
val spec_for : registry -> Obj_id.t -> spec

val commutes : registry -> Action.t -> Action.t -> bool
(** Def. 9 in full: actions on different objects commute; same-process
    actions commute; otherwise the object's specification decides. *)

val conflicts : registry -> Action.t -> Action.t -> bool
(** [conflicts r a a'] — distinct actions that do not commute.  An action
    never conflicts with itself. *)
