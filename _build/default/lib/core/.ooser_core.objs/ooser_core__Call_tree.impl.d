lib/core/call_tree.ml: Action Action_id Array Fmt Ids List Obj_id Process_id Result Set Value
