lib/core/commutativity.ml: Action Action_id Ids List Obj_id Printf Process_id Value
