lib/core/extension.ml: Action Action_id Call_tree Fmt History Ids List Obj_id
