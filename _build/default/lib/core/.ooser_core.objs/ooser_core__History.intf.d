lib/core/history.mli: Action Action_id Call_tree Commutativity Format Ids
