lib/core/schedule.mli: Action Action_id Extension Format History Ids Obj_id
