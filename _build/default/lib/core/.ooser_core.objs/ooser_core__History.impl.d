lib/core/history.ml: Action Action_id Call_tree Commutativity Fmt Hashtbl Ids List Result
