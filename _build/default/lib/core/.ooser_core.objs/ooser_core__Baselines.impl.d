lib/core/baselines.ml: Action Action_id Array Call_tree Commutativity Extension History Ids List Obj_id Schedule
