lib/core/report.ml: Action Action_id Array Fmt Ids List Obj_id Schedule Serializability String
