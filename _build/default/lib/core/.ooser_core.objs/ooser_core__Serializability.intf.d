lib/core/serializability.mli: Action_id Extension Format History Ids Obj_id Schedule
