lib/core/report.mli: Action_id Format History Ids Obj_id Schedule Serializability
