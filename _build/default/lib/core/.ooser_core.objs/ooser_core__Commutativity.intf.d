lib/core/commutativity.mli: Action Ids Obj_id Value
