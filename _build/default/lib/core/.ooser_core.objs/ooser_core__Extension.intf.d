lib/core/extension.mli: Action Action_id History Ids Obj_id
