lib/core/ids.ml: Fmt Int List Map Printf Set String
