lib/core/digraph.ml: Fmt Format List Map Set
