lib/core/ooser_core.ml: Action Baselines Call_tree Commutativity Digraph Extension History Ids Report Schedule Serializability Value
