lib/core/action.mli: Action_id Digraph Format Ids Map Obj_id Process_id Value
