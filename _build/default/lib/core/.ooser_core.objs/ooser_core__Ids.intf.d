lib/core/ids.mli: Format Map Set
