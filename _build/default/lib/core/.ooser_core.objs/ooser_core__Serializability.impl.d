lib/core/serializability.ml: Action Action_id Extension Fmt Hashtbl History Ids List Obj_id Schedule
