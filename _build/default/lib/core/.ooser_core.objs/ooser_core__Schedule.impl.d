lib/core/schedule.ml: Action Action_id Commutativity Extension Fmt History Ids List Obj_id
