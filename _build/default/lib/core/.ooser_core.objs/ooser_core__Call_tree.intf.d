lib/core/call_tree.mli: Action Action_id Format Ids Obj_id Value
