lib/core/baselines.mli: Action Action_id History Ids
