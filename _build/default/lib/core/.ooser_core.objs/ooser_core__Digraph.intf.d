lib/core/digraph.mli: Format
