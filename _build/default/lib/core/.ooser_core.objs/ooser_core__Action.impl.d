lib/core/action.ml: Action_id Digraph Fmt Ids Map Obj_id Process_id Value
