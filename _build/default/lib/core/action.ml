(* Actions: executed messages on objects (Defs. 1-3). *)

open Ids

type t = {
  id : Action_id.t;
  obj : Obj_id.t;
  meth : string;
  args : Value.t list;
  process : Process_id.t;
}

let v ~id ~obj ~meth ?(args = []) ~process () = { id; obj; meth; args; process }

let id t = t.id
let obj t = t.obj
let meth t = t.meth
let args t = t.args
let process t = t.process
let is_virtual t = Action_id.is_virtual t.id || Obj_id.is_virtual t.obj

let with_virtual t ~rank ~obj =
  { t with id = Action_id.virtualize t.id ~rank; obj }

let compare a b = Action_id.compare a.id b.id
let equal a b = compare a b = 0

let pp ppf t =
  Fmt.pf ppf "%a:%a.%s(%a)" Action_id.pp t.id Obj_id.pp t.obj t.meth
    (Fmt.list ~sep:(Fmt.any ", ") Value.pp)
    t.args

let to_string t = Fmt.str "%a" pp t

(* Relations over actions are keyed by action identifier. *)
module Rel = Digraph.Make (struct
  type t = Action_id.t

  let compare = Action_id.compare
  let pp = Action_id.pp
end)

(* Maps keyed by ordered pairs of action identifiers, used to attach
   provenance to dependency edges. *)
module Pair_map = Map.Make (struct
  type t = Action_id.t * Action_id.t

  let compare (a, b) (c, d) =
    match Action_id.compare a c with
    | 0 -> Action_id.compare b d
    | x -> x
end)
