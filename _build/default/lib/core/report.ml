(* Human-readable explanations of schedules and verdicts.

   Every dependency edge carries provenance (Schedule.dep_source); this
   module renders the full inheritance chain of an edge down to its
   Axiom-1 roots, and explains why a rejected schedule was rejected by
   walking the offending cycle edge by edge. *)

open Ids

let indent n = String.make (2 * n) ' '

(* Explain one action dependency edge at an object, recursively following
   inheritance.  Depth-capped defensively. *)
let rec explain_act_edge sched o (a, a') ~depth ppf =
  if depth > 16 then Fmt.pf ppf "%s...@," (indent depth)
  else
    match Schedule.find sched o with
    | None -> Fmt.pf ppf "%s(no schedule for %a)@," (indent depth) Obj_id.pp o
    | Some s -> (
        match Action.Pair_map.find_opt (a, a') s.Schedule.act_src with
        | Some Schedule.Axiom1 ->
            Fmt.pf ppf "%s%a -> %a at %a: conflicting primitives, ordered by execution (Axiom 1)@,"
              (indent depth) Action_id.pp a Action_id.pp a' Obj_id.pp o
        | Some Schedule.Completion ->
            Fmt.pf ppf "%s%a -> %a at %a: conflicting pair ordered by execution span@,"
              (indent depth) Action_id.pp a Action_id.pp a' Obj_id.pp o
        | Some Schedule.Program_order ->
            Fmt.pf ppf "%s%a -> %a at %a: program order within the transaction (Def. 7)@,"
              (indent depth) Action_id.pp a Action_id.pp a' Obj_id.pp o
        | Some (Schedule.Inherited p) ->
            Fmt.pf ppf "%s%a -> %a at %a: inherited from the transaction dependency at %a@,"
              (indent depth) Action_id.pp a Action_id.pp a' Obj_id.pp o Obj_id.pp p;
            explain_txn_edge sched p (a, a') ~depth:(depth + 1) ppf
        | None ->
            Fmt.pf ppf "%s%a -> %a at %a@," (indent depth) Action_id.pp a
              Action_id.pp a' Obj_id.pp o)

(* Explain a transaction dependency edge at an object via its witness. *)
and explain_txn_edge sched o (t, t') ~depth ppf =
  if depth > 16 then Fmt.pf ppf "%s...@," (indent depth)
  else
    match Schedule.find sched o with
    | None -> Fmt.pf ppf "%s(no schedule for %a)@," (indent depth) Obj_id.pp o
    | Some s -> (
        match Action.Pair_map.find_opt (t, t') s.Schedule.txn_src with
        | Some (w, w') ->
            Fmt.pf ppf
              "%sbecause their actions %a and %a on %a conflict and are ordered:@,"
              (indent depth) Action_id.pp w Action_id.pp w' Obj_id.pp o;
            explain_act_edge sched o (w, w') ~depth:(depth + 1) ppf
        | None ->
            Fmt.pf ppf "%s(transaction dependency %a -> %a at %a)@," (indent depth)
              Action_id.pp t Action_id.pp t' Obj_id.pp o)

(* Explain an arbitrary edge of the combined relation at an object:
   action dependency, transaction dependency, or added dependency
   (located at its recording object). *)
let explain_edge sched o (x, y) ~depth ppf =
  match Schedule.find sched o with
  | None -> Fmt.pf ppf "%s(no schedule for %a)@," (indent depth) Obj_id.pp o
  | Some s ->
      if Action.Rel.mem x y s.Schedule.act_dep then
        explain_act_edge sched o (x, y) ~depth ppf
      else if Action.Rel.mem x y s.Schedule.txn_dep then begin
        Fmt.pf ppf "%s%a -> %a: transaction dependency at %a@," (indent depth)
          Action_id.pp x Action_id.pp y Obj_id.pp o;
        explain_txn_edge sched o (x, y) ~depth:(depth + 1) ppf
      end
      else begin
        (* an added dependency (Def. 15): find the object that recorded it *)
        let origin =
          List.find_opt
            (fun os -> Action.Rel.mem x y os.Schedule.txn_dep)
            (Schedule.objects sched)
        in
        match origin with
        | Some os ->
            Fmt.pf ppf
              "%s%a -> %a: added dependency (Def. 15), recorded at %a@,"
              (indent depth) Action_id.pp x Action_id.pp y Obj_id.pp
              os.Schedule.obj;
            explain_txn_edge sched os.Schedule.obj (x, y) ~depth:(depth + 1) ppf
        | None ->
            Fmt.pf ppf "%s%a -> %a (origin unknown)@," (indent depth)
              Action_id.pp x Action_id.pp y
      end

(* Walk a cycle, explaining every edge. *)
let explain_cycle sched o cycle ppf =
  let arr = Array.of_list cycle in
  let n = Array.length arr in
  Fmt.pf ppf "@[<v>cycle at %a: %a -> %a@," Obj_id.pp o
    (Fmt.list ~sep:(Fmt.any " -> ") Action_id.pp)
    cycle Action_id.pp arr.(0);
  for i = 0 to n - 1 do
    explain_edge sched o (arr.(i), arr.((i + 1) mod n)) ~depth:1 ppf
  done;
  Fmt.pf ppf "@]"

(* The full report: verdict per object, with cycle explanations for the
   failures and dependency counts for the successes. *)
let pp ppf (sched, verdict) =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "oo-serializable: %b@,"
    verdict.Serializability.oo_serializable;
  List.iter
    (fun ov ->
      let s = Schedule.find_exn sched ov.Serializability.obj in
      if Serializability.object_oo_serializable ov && ov.Serializability.combined_acyclic
      then
        Fmt.pf ppf "%a: ok (%d actions, %d action deps, %d txn deps)@."
          Obj_id.pp ov.Serializability.obj
          (Action_id.Set.cardinal s.Schedule.acts)
          (Action.Rel.cardinal s.Schedule.act_dep)
          (Action.Rel.cardinal s.Schedule.txn_dep)
      else begin
        Fmt.pf ppf "%a: NOT oo-serializable@," Obj_id.pp ov.Serializability.obj;
        match ov.Serializability.cycle with
        | Some cycle -> explain_cycle sched ov.Serializability.obj cycle ppf
        | None -> ()
      end)
    verdict.Serializability.objects;
  Fmt.pf ppf "@]"

let explain h =
  let sched = Schedule.compute h in
  let verdict = Serializability.check_schedule sched in
  Fmt.str "%a" pp (sched, verdict)
