(* Method parameter and result values (Def. 1: parameterized methods). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

let unit = Unit
let bool b = Bool b
let int i = Int i
let str s = Str s
let pair a b = Pair (a, b)
let list vs = List vs

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Unit, _ -> -1
  | _, Unit -> 1
  | Bool x, Bool y -> Bool.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Str x, Str y -> String.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Pair (x1, y1), Pair (x2, y2) -> (
      match compare x1 x2 with 0 -> compare y1 y2 | c -> c)
  | Pair _, _ -> -1
  | _, Pair _ -> 1
  | List xs, List ys -> List.compare compare xs ys

let equal a b = compare a b = 0

let to_bool = function Bool b -> Some b | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None

let to_int_exn v =
  match v with Int i -> i | _ -> invalid_arg "Value.to_int_exn: not an Int"

let to_str_exn v =
  match v with Str s -> s | _ -> invalid_arg "Value.to_str_exn: not a Str"

let to_bool_exn v =
  match v with
  | Bool b -> b
  | _ -> invalid_arg "Value.to_bool_exn: not a Bool"

let to_list_exn v =
  match v with
  | List vs -> vs
  | _ -> invalid_arg "Value.to_list_exn: not a List"

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.string ppf s
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | List vs -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") pp) vs

let to_string v = Fmt.str "%a" pp v
