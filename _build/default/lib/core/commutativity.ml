(* Commutativity of actions (Def. 9).

   Every object has a commutativity specification deciding, for any pair of
   actions on it, whether they commute or conflict.  Two actions of the
   same process never conflict (Def. 9). *)

open Ids

type spec = { name : string; commutes : Action.t -> Action.t -> bool }

let name s = s.name
let make ~name commutes = { name; commutes }
let test s a a' = s.commutes a a'

let all_commute = { name = "all-commute"; commutes = (fun _ _ -> true) }
let all_conflict = { name = "all-conflict"; commutes = (fun _ _ -> false) }

let sym_mem pairs m m' =
  List.exists (fun (a, b) -> (a = m && b = m') || (a = m' && b = m)) pairs

let of_conflict_matrix ~name pairs =
  { name; commutes = (fun a a' -> not (sym_mem pairs (Action.meth a) (Action.meth a'))) }

let of_commute_matrix ~name pairs =
  { name; commutes = (fun a a' -> sym_mem pairs (Action.meth a) (Action.meth a')) }

let rw ~reads ~writes =
  let kind m =
    if List.mem m reads then `Read
    else if List.mem m writes then `Write
    else `Unknown
  in
  {
    name = "read-write";
    commutes =
      (fun a a' ->
        match (kind (Action.meth a), kind (Action.meth a')) with
        | `Read, `Read -> true
        | `Read, `Write | `Write, `Read | `Write, `Write -> false
        | `Unknown, _ | _, `Unknown -> false);
  }

(* Refine [inner]: actions addressing different keys always commute;
   actions on the same key (or with no key) defer to [inner].  This is the
   leaf/node-level semantics of Example 1: inserts of different keys
   commute even when they collide on the same page. *)
let by_key ~key_of inner =
  {
    name = Printf.sprintf "keyed(%s)" inner.name;
    commutes =
      (fun a a' ->
        match (key_of a, key_of a') with
        | Some k, Some k' when not (Value.equal k k') -> true
        | _ -> inner.commutes a a');
  }

let predicate ~name f = { name; commutes = f }

let first_arg a = match Action.args a with [] -> None | v :: _ -> Some v

(* Registries map objects to their specification.  Virtual objects
   (Def. 5) behave exactly like their originals. *)
type registry = { spec_for : Obj_id.t -> spec }

let registry spec_for =
  { spec_for = (fun o -> spec_for (Obj_id.original o)) }

let fixed ?(default = all_conflict) table =
  registry (fun o ->
      match List.assoc_opt (Obj_id.name o) table with
      | Some s -> s
      | None -> default)

let uniform spec = registry (fun _ -> spec)

let spec_for r o = r.spec_for o

let commutes r a a' =
  (* actions on different objects never interact, hence commute *)
  (not (Obj_id.equal (Action.obj a) (Action.obj a')))
  || Process_id.equal (Action.process a) (Action.process a')
  || (r.spec_for (Action.obj a)).commutes a a'

let conflicts r a a' =
  (not (Action_id.equal (Action.id a) (Action.id a'))) && not (commutes r a a')
