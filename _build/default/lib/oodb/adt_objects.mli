(** The semantically rich abstract data types of §2 registered as
    encapsulated database objects: each object couples the ADT state with
    its commutativity specification, and every update registers an undo
    closure so aborts stay atomic.

    Methods (all primitive):
    - counter: [incr n] / [decr n] / [read] (escrow commutativity);
    - set: [insert v] / [remove v] / [contains v] / [cardinal];
    - queue: [enqueue v] / [dequeue] → [("some", v)] or [("none", ())] /
      [length] (state-dependent commutativity);
    - directory: [bind k v] / [unbind k] / [lookup k] / [list] (keyed,
      with the phantom-prone [list]).

    The returned ADT handles allow direct (non-transactional) inspection
    in tests and reports. *)

open Ooser_core

val register_counter :
  Database.t ->
  Obj_id.t ->
  ?low:int ->
  ?high:int ->
  int ->
  Ooser_adts.Escrow_counter.t

val register_set : Database.t -> Obj_id.t -> Ooser_adts.Kv_set.t
val register_queue : Database.t -> Obj_id.t -> Ooser_adts.Fifo_queue.t
val register_directory : Database.t -> Obj_id.t -> Ooser_adts.Directory.t
