(* Umbrella module for the object database layer. *)

module Runtime = Runtime
module Database = Database
module Engine = Engine
module Encyclopedia = Encyclopedia
module Adt_objects = Adt_objects
