lib/oodb/ooser_oodb.ml: Adt_objects Database Encyclopedia Engine Runtime
