lib/oodb/engine.mli: Database History Obj_id Ooser_cc Ooser_core Ooser_sim Runtime Value
