lib/oodb/adt_objects.ml: Database List Ooser_adts Ooser_core Runtime Value
