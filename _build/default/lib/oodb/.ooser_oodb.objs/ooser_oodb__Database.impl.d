lib/oodb/database.ml: Commutativity Fmt List Obj_id Ooser_core Runtime Value
