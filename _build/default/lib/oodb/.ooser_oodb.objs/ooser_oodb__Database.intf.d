lib/oodb/database.mli: Commutativity Obj_id Ooser_core Runtime Value
