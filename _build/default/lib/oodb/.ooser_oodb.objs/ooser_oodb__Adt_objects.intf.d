lib/oodb/adt_objects.mli: Database Obj_id Ooser_adts Ooser_core
