lib/oodb/encyclopedia.ml: Action Buffer_pool Commutativity Database Disk Fmt Hashtbl List Obj_id Ooser_btree Ooser_core Ooser_storage Page Printf Runtime Value
