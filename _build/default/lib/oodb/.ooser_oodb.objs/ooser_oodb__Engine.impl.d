lib/oodb/engine.ml: Action Array Call_tree Commutativity Database Effect Fmt History Ids Int List Obj_id Ooser_cc Ooser_core Ooser_sim Option Printexc Printf Runtime Serializability Value
