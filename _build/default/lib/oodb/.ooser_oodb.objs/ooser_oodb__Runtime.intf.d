lib/oodb/runtime.mli: Effect Format Obj_id Ooser_core Value
