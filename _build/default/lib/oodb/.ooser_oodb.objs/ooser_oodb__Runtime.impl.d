lib/oodb/runtime.ml: Effect Fmt Obj_id Ooser_core Value
