lib/oodb/encyclopedia.mli: Buffer_pool Database Disk Format Obj_id Ooser_core Ooser_storage Runtime
