(* The semantically rich abstract data types of §2 (Weihl's sets and
   directories, Spector & Schwartz's queues, O'Neil's escrow counters)
   registered as encapsulated database objects: each object couples the
   ADT state with its commutativity specification, its methods register
   undo closures, and updates carry compensations for open nesting. *)

open Ooser_core
module Escrow = Ooser_adts.Escrow_counter
module Kv_set = Ooser_adts.Kv_set
module Fifo_queue = Ooser_adts.Fifo_queue
module Directory = Ooser_adts.Directory

let one_arg = function
  | [ v ] -> v
  | _ -> invalid_arg "expected one argument"

let int_arg args = Value.to_int_exn (one_arg args)

(* -- escrow counter ------------------------------------------------------------ *)

let register_counter db oid ?(low = min_int) ?(high = max_int) initial =
  let c = Escrow.create ~low ~high initial in
  let incr ctx args =
    let n = int_arg args in
    Escrow.incr c n;
    Runtime.on_undo ctx (fun () -> Escrow.decr c n);
    Value.unit
  in
  let decr ctx args =
    let n = int_arg args in
    Escrow.decr c n;
    Runtime.on_undo ctx (fun () -> Escrow.incr c n);
    Value.unit
  in
  let read _ _ = Value.int (Escrow.value c) in
  Database.register db oid ~spec:(Escrow.spec c)
    [
      ("incr", Database.primitive incr);
      ("decr", Database.primitive decr);
      ("read", Database.primitive read);
    ];
  c

(* -- set -------------------------------------------------------------------------- *)

let register_set db oid =
  let s = Kv_set.create () in
  (* the counted representation makes compensations commute: undoing an
     insert decrements the element's count, so a concurrent same-key
     insert by another transaction survives our abort *)
  let insert ctx args =
    let v = one_arg args in
    Kv_set.insert s v;
    Runtime.on_undo ctx (fun () -> Kv_set.decr_count s v);
    Value.unit
  in
  let compensate_insert args _result =
    match args with
    | [ v ] ->
        Database.Inverse
          { Runtime.target = oid; meth_name = "decrCount"; args = [ v ] }
    | _ -> Database.Keep_undo
  in
  let decr_count ctx args =
    let v = one_arg args in
    let had = Kv_set.count s v in
    Kv_set.decr_count s v;
    Runtime.on_undo ctx (fun () -> if had > 0 then Kv_set.insert s v);
    Value.unit
  in
  let remove ctx args =
    let v = one_arg args in
    let dropped = Kv_set.remove s v in
    Runtime.on_undo ctx (fun () -> Kv_set.add_count s v dropped);
    Value.pair (Value.str "dropped") (Value.int dropped)
  in
  let compensate_remove args result =
    match (args, result) with
    | [ v ], Value.Pair (_, Value.Int dropped) when dropped > 0 ->
        Database.Inverse
          { Runtime.target = oid; meth_name = "addCount";
            args = [ v; Value.int dropped ] }
    | _ -> Database.Forget
  in
  let add_count ctx args =
    match args with
    | [ v; Value.Int n ] ->
        Kv_set.add_count s v n;
        Runtime.on_undo ctx (fun () -> Kv_set.add_count s v (-n));
        Value.unit
    | _ -> invalid_arg "addCount"
  in
  let contains _ args = Value.bool (Kv_set.mem s (one_arg args)) in
  let cardinal _ _ = Value.int (Kv_set.cardinal s) in
  Database.register db oid ~spec:Kv_set.spec
    [
      ("insert", Database.primitive ~compensate:compensate_insert insert);
      ("remove", Database.primitive ~compensate:compensate_remove remove);
      ("decrCount", Database.primitive decr_count);
      ("addCount", Database.primitive add_count);
      ("contains", Database.primitive contains);
      ("cardinal", Database.primitive cardinal);
    ];
  s

(* -- FIFO queue -------------------------------------------------------------------- *)

let register_queue db oid =
  let q = Fifo_queue.create () in
  let drain () =
    let rec go acc =
      match Fifo_queue.dequeue q with
      | Some x -> go (x :: acc)
      | None -> List.rev acc
    in
    go []
  in
  let refill items = List.iter (Fifo_queue.enqueue q) items in
  (* remove the LAST occurrence of [v], wherever it sits — the logical
     inverse of an enqueue even after later enqueues by others *)
  let remove_last_of v =
    let items = drain () in
    let rec drop_first = function
      | [] -> []
      | x :: rest when Value.equal x v -> rest
      | x :: rest -> x :: drop_first rest
    in
    refill (List.rev (drop_first (List.rev items)))
  in
  let push_front v =
    let items = drain () in
    refill (v :: items)
  in
  let enqueue ctx args =
    let v = one_arg args in
    Fifo_queue.enqueue q v;
    Runtime.on_undo ctx (fun () -> remove_last_of v);
    Value.unit
  in
  (* compensations: once the enclosing subtransaction committed at its
     level, the queue may have grown/shrunk under other transactions, so
     the inverse is a method invocation that re-acquires the lock *)
  let compensate_enqueue args _result =
    match args with
    | [ v ] ->
        Database.Inverse
          { Runtime.target = oid; meth_name = "removeLastOf"; args = [ v ] }
    | _ -> Database.Keep_undo
  in
  let remove_last_meth ctx args =
    let v = one_arg args in
    let before = drain () in
    refill before;
    Runtime.on_undo ctx (fun () ->
        ignore (drain ());
        refill before);
    remove_last_of v;
    Value.unit
  in
  let dequeue ctx _ =
    match Fifo_queue.dequeue q with
    | Some v ->
        Runtime.on_undo ctx (fun () -> push_front v);
        Value.pair (Value.str "some") v
    | None -> Value.pair (Value.str "none") Value.unit
  in
  let compensate_dequeue _args result =
    match result with
    | Value.Pair (Value.Str "some", v) ->
        Database.Inverse
          { Runtime.target = oid; meth_name = "requeueFront"; args = [ v ] }
    | _ -> Database.Forget
  in
  let requeue_front ctx args =
    let v = one_arg args in
    push_front v;
    Runtime.on_undo ctx (fun () -> ignore (Fifo_queue.dequeue q));
    Value.unit
  in
  let length _ _ = Value.int (Fifo_queue.length q) in
  Database.register db oid ~spec:(Fifo_queue.spec q)
    [
      ("enqueue", Database.primitive ~compensate:compensate_enqueue enqueue);
      ("dequeue", Database.primitive ~compensate:compensate_dequeue dequeue);
      ("removeLastOf", Database.primitive remove_last_meth);
      ("requeueFront", Database.primitive requeue_front);
      ("length", Database.primitive length);
    ];
  q

(* -- directory ----------------------------------------------------------------------- *)

let register_directory db oid =
  let d = Directory.create () in
  let bind ctx args =
    match args with
    | [ k; v ] ->
        let old = Directory.lookup d k in
        Directory.bind d k v;
        Runtime.on_undo ctx (fun () ->
            match old with
            | Some o -> Directory.bind d k o
            | None -> Directory.unbind d k);
        Value.unit
    | _ -> invalid_arg "bind: expected key and value"
  in
  let unbind ctx args =
    let k = one_arg args in
    let old = Directory.lookup d k in
    Directory.unbind d k;
    Runtime.on_undo ctx (fun () ->
        match old with Some o -> Directory.bind d k o | None -> ());
    Value.unit
  in
  let lookup _ args =
    match Directory.lookup d (one_arg args) with
    | Some v -> Value.pair (Value.str "some") v
    | None -> Value.pair (Value.str "none") Value.unit
  in
  let list _ _ = Value.list (Directory.names d) in
  Database.register db oid ~spec:Directory.spec
    [
      ("bind", Database.primitive bind);
      ("unbind", Database.primitive unbind);
      ("lookup", Database.primitive lookup);
      ("list", Database.primitive list);
    ];
  d
