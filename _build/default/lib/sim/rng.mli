(** Deterministic pseudo-random numbers (splitmix64).

    Every experiment in the repository is seeded so results are exactly
    reproducible; nothing depends on [Random] or wall-clock state. *)

type t

val create : seed:int -> t
val copy : t -> t

val next_int64 : t -> int64

val bits : t -> int
(** 62 non-negative pseudo-random bits. *)

val int : t -> int -> int
(** [int t bound] in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val split : t -> t
(** Derive an independent stream (advances this one). *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a list -> 'a list
