(* Streaming statistics and simple histograms for the experiment
   harness. *)

type t = {
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { n = 0; sum = 0.0; sumsq = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_int t x = add t (float_of_int x)

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let variance t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    Float.max 0.0 ((t.sumsq /. float_of_int t.n) -. (m *. m))

let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then 0.0 else t.min
let max_value t = if t.n = 0 then 0.0 else t.max

let merge a b =
  {
    n = a.n + b.n;
    sum = a.sum +. b.sum;
    sumsq = a.sumsq +. b.sumsq;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max;
  }

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t) (stddev t)
    (min_value t) (max_value t)

(* Counters keyed by string, for event tallies. *)
module Counter = struct
  type t = (string, int) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let incr ?(by = 1) t key =
    let cur = match Hashtbl.find_opt t key with Some v -> v | None -> 0 in
    Hashtbl.replace t key (cur + by)

  let get t key =
    match Hashtbl.find_opt t key with Some v -> v | None -> 0

  let to_list t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let pp ppf t =
    Fmt.pf ppf "%a"
      (Fmt.list ~sep:(Fmt.any ", ") (Fmt.pair ~sep:(Fmt.any "=") Fmt.string Fmt.int))
      (to_list t)
end
