(** Streaming statistics and event counters for the experiment harness. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
val variance : t -> float
val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val merge : t -> t -> t
val pp : Format.formatter -> t -> unit

(** Counters keyed by string, for event tallies. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
  val pp : Format.formatter -> t -> unit
end
