(* Key distributions for workload generation.

   Zipf sampling uses the inverse-CDF over precomputed cumulative weights;
   exact and fast enough for the universe sizes of our experiments. *)

type t =
  | Uniform of int
  | Zipf of { n : int; cum : float array }
  | Constant of int

let uniform n =
  if n <= 0 then invalid_arg "Dist.uniform: need positive universe";
  Uniform n

let constant k = Constant k

let zipf ~theta n =
  if n <= 0 then invalid_arg "Dist.zipf: need positive universe";
  if theta < 0.0 then invalid_arg "Dist.zipf: theta must be >= 0";
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let cum = Array.make n 0.0 in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      acc := !acc +. (x /. total);
      cum.(i) <- !acc)
    w;
  cum.(n - 1) <- 1.0;
  Zipf { n; cum }

let universe = function
  | Uniform n -> n
  | Zipf { n; _ } -> n
  | Constant _ -> 1

let sample rng = function
  | Uniform n -> Rng.int rng n
  | Constant k -> k
  | Zipf { n; cum } ->
      let u = Rng.float rng in
      (* binary search for the first index with cum.(i) >= u *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cum.(mid) >= u then hi := mid else lo := mid + 1
      done;
      !lo
