(* Umbrella module for the simulation support library. *)

module Rng = Rng
module Dist = Dist
module Stats = Stats
