(** Key distributions for workload generation. *)

type t

val uniform : int -> t
(** Uniform over [\[0, n)].
    @raise Invalid_argument when [n <= 0]. *)

val zipf : theta:float -> int -> t
(** Zipfian over [\[0, n)] with skew [theta] ([theta = 0] is uniform;
    typical skewed workloads use 0.8–1.2).
    @raise Invalid_argument on invalid parameters. *)

val constant : int -> t

val universe : t -> int
val sample : Rng.t -> t -> int
