lib/sim/rng.mli:
