lib/sim/stats.ml: Float Fmt Hashtbl List String
