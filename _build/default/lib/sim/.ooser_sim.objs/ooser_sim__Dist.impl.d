lib/sim/dist.ml: Array Float Rng
