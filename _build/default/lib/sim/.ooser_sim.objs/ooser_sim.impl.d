lib/sim/ooser_sim.ml: Dist Rng Stats
