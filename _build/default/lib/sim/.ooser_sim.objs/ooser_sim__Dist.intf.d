lib/sim/dist.mli: Rng
