lib/sim/rng.ml: Array Int64 List
