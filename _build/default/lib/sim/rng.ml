(* Deterministic pseudo-random numbers (splitmix64).

   Every experiment in the repository is seeded, so results are exactly
   reproducible; we do not rely on [Random] or wall-clock state. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step (Steele, Lea & Flood). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive"
  else bits t mod bound

let float t =
  (* 53 uniform bits in [0, 1) *)
  let b = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  b /. 9007199254740992.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

let split t =
  (* derive an independent stream *)
  let seed = Int64.to_int (next_int64 t) land max_int in
  create ~seed

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
