(** B-link tree nodes.

    Every node (leaf and internal) carries a right link and a high key
    (Lehman/Yao B-link, the concurrent search structure of [15] that §2 of
    the paper builds its example on).  A node covers keys strictly below
    its high key; a search meeting a key at or beyond the high key follows
    the right link — that is what keeps half-completed splits consistent.

    Nodes are immutable values serialized into a single page record. *)

type kind = Leaf | Internal
type t

val leaf : ?right_link:int -> ?high_key:string -> (string * string) list -> t
(** A leaf from sorted (key, value) entries. *)

val internal :
  ?right_link:int ->
  ?high_key:string ->
  leftmost:int ->
  (string * string) list ->
  t
(** An internal node: [leftmost] child covers keys below the first
    separator; each entry [(k, child)] covers keys from [k] up to the next
    separator (child page ids in decimal). *)

val kind : t -> kind
val entries : t -> (string * string) list
val size : t -> int
val right_link : t -> int option
val high_key : t -> string option
val leftmost : t -> int option

val covers : t -> string -> bool
(** Key strictly below the high key (always true when unbounded). *)

val find : t -> string -> string option
(** Leaf lookup. @raise Invalid_argument on internal nodes. *)

val insert : t -> string -> string -> t
(** Leaf upsert, keeps entries sorted.
    @raise Invalid_argument on internal nodes. *)

val delete : t -> string -> t option
(** [None] when the key is absent.
    @raise Invalid_argument on internal nodes. *)

(** Result of routing a key through an internal node (or a leaf whose
    high key the key exceeds). *)
type descent = Child of int | Follow_right of int

val route : t -> string -> descent
(** @raise Invalid_argument when routing a covered key through a leaf. *)

val add_separator : t -> key:string -> child:int -> t
(** @raise Invalid_argument on leaves. *)

val remove_separator : t -> child:int -> t option
(** Drop the separator pointing at [child]; [None] when absent.
    @raise Invalid_argument on leaves. *)

val rename_separator : t -> child:int -> key:string -> t
(** Replace the key of the separator pointing at [child].
    @raise Invalid_argument on leaves. *)

val absorb_right : t -> t -> t
(** Merge the right sibling's entries into this leaf, taking over its
    B-link and high key.  @raise Invalid_argument on internal nodes. *)

val borrow_from_right : t -> t -> t * t * string
(** Move the right sibling's first entry into this leaf; returns both
    updated nodes and the new separator key.
    @raise Invalid_argument on internal nodes or an empty sibling. *)

val split_leaf : t -> (int -> t) * string * t
(** [split_leaf t = (make_left, separator, right)]: the right node holds
    the upper half; [make_left right_pid] is the left node with its B-link
    pointing at the freshly allocated right page.
    @raise Invalid_argument with fewer than 2 entries. *)

val split_internal : t -> (int -> t) * string * t
(** Same shape; the middle separator moves up to the parent.
    @raise Invalid_argument with fewer than 3 separators. *)

val encode : t -> string
val decode : string -> t
(** @raise Failure on corrupt input. *)

val pp : Format.formatter -> t -> unit
