(* Umbrella module for the B+ tree substrate. *)

module Codec = Ooser_storage.Codec
module Node = Node
module Btree = Btree
