(* B-link tree nodes.

   Every node (leaf and internal) carries a right link and a high key
   (Lehman/Yao B-link, the concurrent search structure of [15] that §2 of
   the paper builds its example on).  A node covers keys strictly below
   its high key; a search meeting a larger key follows the right link —
   that is what keeps half-completed splits consistent. *)

module Codec = Ooser_storage.Codec

type kind = Leaf | Internal

type t = {
  kind : kind;
  entries : (string * string) list;
      (* sorted; for internal nodes the "value" is the child page id in
         decimal (the codec stores it as u32) *)
  leftmost : int option;  (* internal: child for keys below the first entry *)
  right_link : int option;
  high_key : string option;  (* exclusive upper bound; None = +infinity *)
}

let leaf ?right_link ?high_key entries =
  { kind = Leaf; entries; leftmost = None; right_link; high_key }

let internal ?right_link ?high_key ~leftmost entries =
  { kind = Internal; entries; leftmost = Some leftmost; right_link; high_key }

let kind t = t.kind
let entries t = t.entries
let size t = List.length t.entries
let right_link t = t.right_link
let high_key t = t.high_key
let leftmost t = t.leftmost

let covers t key =
  match t.high_key with None -> true | Some h -> key < h

(* -- leaf operations ----------------------------------------------------- *)

let find t key =
  if t.kind <> Leaf then invalid_arg "Node.find: internal node";
  List.assoc_opt key t.entries

let rec insert_sorted key value = function
  | [] -> [ (key, value) ]
  | (k, _) :: _ as l when key < k -> (key, value) :: l
  | (k, _) :: rest when key = k -> (key, value) :: rest (* upsert *)
  | e :: rest -> e :: insert_sorted key value rest

let insert t key value =
  if t.kind <> Leaf then invalid_arg "Node.insert: internal node";
  { t with entries = insert_sorted key value t.entries }

let delete t key =
  if t.kind <> Leaf then invalid_arg "Node.delete: internal node";
  let entries = List.filter (fun (k, _) -> k <> key) t.entries in
  if List.length entries = List.length t.entries then None
  else Some { t with entries }

(* -- internal operations ------------------------------------------------- *)

type descent = Child of int | Follow_right of int

(* Route a key: follow the right link when the key is beyond the high key
   (a split has moved it), otherwise pick the covering child. *)
let route t key =
  match t.high_key, t.right_link with
  | Some h, Some r when key >= h -> Follow_right r
  | Some _, None when not (covers t key) ->
      invalid_arg "Node.route: key beyond high key with no right link"
  | _ ->
      if t.kind <> Internal then invalid_arg "Node.route: leaf node";
      let lm =
        match t.leftmost with
        | Some c -> c
        | None -> invalid_arg "Node.route: internal without leftmost"
      in
      let rec go best = function
        | [] -> best
        | (k, c) :: rest -> if key >= k then go (int_of_string c) rest else best
      in
      Child (go lm t.entries)

let add_separator t ~key ~child =
  if t.kind <> Internal then invalid_arg "Node.add_separator: leaf node";
  { t with entries = insert_sorted key (string_of_int child) t.entries }

(* Drop the separator pointing at [child]; [None] when absent. *)
let remove_separator t ~child =
  if t.kind <> Internal then invalid_arg "Node.remove_separator: leaf node";
  let c = string_of_int child in
  if List.exists (fun (_, v) -> v = c) t.entries then
    Some { t with entries = List.filter (fun (_, v) -> v <> c) t.entries }
  else None

(* Replace the key of the separator pointing at [child]. *)
let rename_separator t ~child ~key =
  if t.kind <> Internal then invalid_arg "Node.rename_separator: leaf node";
  let c = string_of_int child in
  {
    t with
    entries =
      List.sort compare
        (List.map (fun (k, v) -> if v = c then (key, v) else (k, v)) t.entries);
  }

(* Append the right sibling's content to this node (both leaves), taking
   over its link and high key. *)
let absorb_right t right =
  if t.kind <> Leaf || right.kind <> Leaf then invalid_arg "Node.absorb_right";
  {
    t with
    entries = t.entries @ right.entries;
    right_link = right.right_link;
    high_key = right.high_key;
  }

(* Move the right sibling's first entry into this leaf; returns the pair
   of updated nodes and the new separator key. *)
let borrow_from_right t right =
  if t.kind <> Leaf || right.kind <> Leaf then invalid_arg "Node.borrow_from_right";
  match right.entries with
  | [] -> invalid_arg "Node.borrow_from_right: empty sibling"
  | (k, v) :: rest ->
      let new_sep =
        match rest with
        | (k', _) :: _ -> k'
        | [] -> ( match right.high_key with Some h -> h | None -> k)
      in
      ( { t with entries = t.entries @ [ (k, v) ]; high_key = Some new_sep },
        { right with entries = rest },
        new_sep )

(* -- splits --------------------------------------------------------------- *)

(* Split a leaf: the left half keeps the low keys, the new right node takes
   the rest; the separator (first key of the right half) becomes the left
   node's high key.  Returns (left, separator, right). *)
let split_leaf t =
  if t.kind <> Leaf then invalid_arg "Node.split_leaf";
  let n = List.length t.entries in
  if n < 2 then invalid_arg "Node.split_leaf: too few entries";
  let mid = n / 2 in
  let rec take i = function
    | [] -> ([], [])
    | l when i = 0 -> ([], l)
    | x :: rest ->
        let a, b = take (i - 1) rest in
        (x :: a, b)
  in
  let left_entries, right_entries = take mid t.entries in
  let sep = fst (List.hd right_entries) in
  let right =
    { t with entries = right_entries }
  in
  ( (fun right_pid ->
      { t with entries = left_entries; right_link = Some right_pid; high_key = Some sep }),
    sep,
    right )

(* Split an internal node: the middle separator moves up; the right node
   takes the upper separators with the middle one's child as leftmost. *)
let split_internal t =
  if t.kind <> Internal then invalid_arg "Node.split_internal";
  let n = List.length t.entries in
  if n < 3 then invalid_arg "Node.split_internal: too few separators";
  let mid = n / 2 in
  let arr = Array.of_list t.entries in
  let left_entries = Array.to_list (Array.sub arr 0 mid) in
  let sep_key, sep_child = arr.(mid) in
  let right_entries = Array.to_list (Array.sub arr (mid + 1) (n - mid - 1)) in
  let right =
    {
      kind = Internal;
      entries = right_entries;
      leftmost = Some (int_of_string sep_child);
      right_link = t.right_link;
      high_key = t.high_key;
    }
  in
  ( (fun right_pid ->
      {
        t with
        entries = left_entries;
        right_link = Some right_pid;
        high_key = Some sep_key;
      }),
    sep_key,
    right )

(* -- serialization -------------------------------------------------------- *)

let encode t =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w (match t.kind with Leaf -> 1 | Internal -> 2);
  (match t.leftmost with
  | None -> Codec.Writer.u8 w 0
  | Some c ->
      Codec.Writer.u8 w 1;
      Codec.Writer.u32 w c);
  (match t.right_link with
  | None -> Codec.Writer.u8 w 0
  | Some c ->
      Codec.Writer.u8 w 1;
      Codec.Writer.u32 w c);
  (match t.high_key with
  | None -> Codec.Writer.u8 w 0
  | Some h ->
      Codec.Writer.u8 w 1;
      Codec.Writer.string w h);
  Codec.Writer.u16 w (List.length t.entries);
  List.iter
    (fun (k, v) ->
      Codec.Writer.string w k;
      match t.kind with
      | Leaf -> Codec.Writer.string w v
      | Internal -> Codec.Writer.u32 w (int_of_string v))
    t.entries;
  Codec.Writer.contents w

let decode s =
  let r = Codec.Reader.create s in
  let kind = match Codec.Reader.u8 r with
    | 1 -> Leaf
    | 2 -> Internal
    | k -> failwith (Printf.sprintf "Node.decode: bad kind %d" k)
  in
  let leftmost =
    match Codec.Reader.u8 r with
    | 0 -> None
    | _ -> Some (Codec.Reader.u32 r)
  in
  let right_link =
    match Codec.Reader.u8 r with
    | 0 -> None
    | _ -> Some (Codec.Reader.u32 r)
  in
  let high_key =
    match Codec.Reader.u8 r with
    | 0 -> None
    | _ -> Some (Codec.Reader.string r)
  in
  let n = Codec.Reader.u16 r in
  let entries =
    List.init n (fun _ ->
        let k = Codec.Reader.string r in
        let v =
          match kind with
          | Leaf -> Codec.Reader.string r
          | Internal -> string_of_int (Codec.Reader.u32 r)
        in
        (k, v))
  in
  { kind; entries; leftmost; right_link; high_key }

let pp ppf t =
  let k = match t.kind with Leaf -> "leaf" | Internal -> "node" in
  Fmt.pf ppf "%s[%a%a%a]" k
    (Fmt.list ~sep:(Fmt.any " ") (fun ppf (k, v) -> Fmt.pf ppf "%s:%s" k v))
    t.entries
    (Fmt.option (fun ppf h -> Fmt.pf ppf " high=%s" h))
    t.high_key
    (Fmt.option (fun ppf r -> Fmt.pf ppf " link=%d" r))
    t.right_link
