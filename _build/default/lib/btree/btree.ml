(* B+ tree with B-link pointers over the page store.

   This is the standalone index manager: operations work directly on the
   buffer pool.  The object-oriented rendering of the same structure (one
   object per node, page accesses as primitive actions) lives in
   ooser_oodb; both share the node layer. *)

open Ooser_storage

type t = {
  pool : Buffer_pool.t;
  meta : Disk.page_id;
  max_entries : int;
  mutable node_reads : int;
  mutable node_writes : int;
  mutable splits : int;
  mutable merges : int;
  mutable borrows : int;
}

let kind_meta = 3

(* -- node and meta I/O ---------------------------------------------------- *)

let read_node t pid =
  t.node_reads <- t.node_reads + 1;
  Buffer_pool.with_page t.pool pid ~f:(fun page ->
      (Node.decode (Page.get_exn page 0), false))

let write_node t pid node =
  t.node_writes <- t.node_writes + 1;
  Buffer_pool.with_page t.pool pid ~f:(fun page ->
      let s = Node.encode node in
      let ok =
        if Page.is_live page 0 then Page.update page 0 s
        else match Page.insert page s with Some 0 -> true | _ -> false
      in
      if not ok then failwith "Btree.write_node: node exceeds page size";
      ((), true))

let read_root t =
  Buffer_pool.with_page t.pool t.meta ~f:(fun page ->
      let r = Codec.Reader.create (Page.get_exn page 0) in
      (Codec.Reader.u32 r, false))

let write_root t pid =
  Buffer_pool.with_page t.pool t.meta ~f:(fun page ->
      let w = Codec.Writer.create () in
      Codec.Writer.u32 w pid;
      let s = Codec.Writer.contents w in
      let ok =
        if Page.is_live page 0 then Page.update page 0 s
        else match Page.insert page s with Some 0 -> true | _ -> false
      in
      if not ok then failwith "Btree.write_root: meta page full";
      ((), true))

let alloc_node t node =
  let pid = Buffer_pool.alloc t.pool in
  write_node t pid node;
  pid

(* -- creation -------------------------------------------------------------- *)

let create ?(max_entries = 8) pool =
  if max_entries < 2 then invalid_arg "Btree.create: max_entries >= 2";
  let meta = Buffer_pool.alloc pool in
  Buffer_pool.with_page pool meta ~f:(fun page ->
      Page.set_kind page kind_meta;
      ((), true));
  let t =
    { pool; meta; max_entries; node_reads = 0; node_writes = 0; splits = 0;
      merges = 0; borrows = 0 }
  in
  let root = alloc_node t (Node.leaf []) in
  write_root t root;
  t

let max_entries t = t.max_entries
let node_reads t = t.node_reads
let node_writes t = t.node_writes
let splits t = t.splits
let merges t = t.merges
let borrows t = t.borrows

(* -- descent --------------------------------------------------------------- *)

(* Move right along B-links until the node covers the key. *)
let rec rightward t pid node key =
  if Node.covers node key then (pid, node)
  else
    match Node.right_link node with
    | Some r -> rightward t r (read_node t r) key
    | None -> (pid, node)

(* Descend to the leaf responsible for [key], recording the internal path
   (page ids) for split propagation. *)
let descend_to_leaf t key =
  let rec go pid path =
    let node = read_node t pid in
    let pid, node = rightward t pid node key in
    match Node.kind node with
    | Node.Leaf -> (pid, node, path)
    | Node.Internal -> (
        match Node.route node key with
        | Node.Child c -> go c (pid :: path)
        | Node.Follow_right r -> go r path)
  in
  go (read_root t) []

(* -- public operations ------------------------------------------------------ *)

let search t key =
  let _, leaf, _ = descend_to_leaf t key in
  Node.find leaf key

let mem t key = search t key <> None

(* Install a separator into the parent chain after a split; splits
   propagate upward, possibly creating a new root. *)
let rec install_separator t path ~sep ~child ~left_pid =
  match path with
  | [] ->
      (* the split node was the root: grow the tree *)
      let new_root = Node.internal ~leftmost:left_pid [ (sep, string_of_int child) ] in
      let pid = alloc_node t new_root in
      write_root t pid
  | parent_pid :: rest ->
      let parent = read_node t parent_pid in
      let parent_pid, parent = rightward t parent_pid parent sep in
      let parent = Node.add_separator parent ~key:sep ~child in
      if Node.size parent <= t.max_entries then write_node t parent_pid parent
      else begin
        t.splits <- t.splits + 1;
        let make_left, up_sep, right = Node.split_internal parent in
        let right_pid = alloc_node t right in
        write_node t parent_pid (make_left right_pid);
        install_separator t rest ~sep:up_sep ~child:right_pid ~left_pid:parent_pid
      end

let insert t key value =
  let leaf_pid, leaf, path = descend_to_leaf t key in
  let leaf = Node.insert leaf key value in
  if Node.size leaf <= t.max_entries then write_node t leaf_pid leaf
  else begin
    t.splits <- t.splits + 1;
    let make_left, sep, right = Node.split_leaf leaf in
    let right_pid = alloc_node t right in
    write_node t leaf_pid (make_left right_pid);
    install_separator t path ~sep ~child:right_pid ~left_pid:leaf_pid
  end

(* Underflow handling after a leaf deletion: rebalance against the RIGHT
   sibling only (left links do not exist in a B-link tree) — merge when
   both halves fit, borrow the sibling's first entry otherwise.  Internal
   nodes are never rebalanced (lazy, as in most production index
   managers), except that an empty root collapses onto its only child. *)
let min_entries t = t.max_entries / 2

let rebalance_leaf t leaf_pid leaf path =
  match (Node.right_link leaf, path) with
  | Some right_pid, parent_pid :: _ -> (
      let right = read_node t right_pid in
      let parent = read_node t parent_pid in
      let parent_owns_right =
        List.exists
          (fun (_, c) -> c = string_of_int right_pid)
          (Node.entries parent)
      in
      (* rebalancing across parents would tear the separator bookkeeping:
         only true siblings (same parent) merge or borrow *)
      if Node.kind right <> Node.Leaf || not parent_owns_right then
        write_node t leaf_pid leaf
      else if Node.size leaf + Node.size right <= t.max_entries then begin
        (* merge: absorb the right sibling, drop its separator *)
        t.merges <- t.merges + 1;
        write_node t leaf_pid (Node.absorb_right leaf right);
        (* empty the absorbed page so any stale descent finds nothing *)
        write_node t right_pid
          (Node.leaf ?right_link:(Node.right_link right)
             ?high_key:(Node.high_key right) []);
        match Node.remove_separator parent ~child:right_pid with
        | Some parent' -> write_node t parent_pid parent'
        | None -> ()
      end
      else if Node.size right > min_entries t then begin
        t.borrows <- t.borrows + 1;
        let leaf', right', sep = Node.borrow_from_right leaf right in
        write_node t right_pid right';
        write_node t leaf_pid leaf';
        write_node t parent_pid
          (Node.rename_separator parent ~child:right_pid ~key:sep)
      end
      else write_node t leaf_pid leaf)
  | _ ->
      (* rightmost leaf or root leaf: leave it underfull *)
      write_node t leaf_pid leaf

(* Collapse a root that lost all separators onto its only child. *)
let maybe_collapse_root t =
  let root_pid = read_root t in
  let root = read_node t root_pid in
  match (Node.kind root, Node.entries root, Node.leftmost root) with
  | Node.Internal, [], Some only -> write_root t only
  | _ -> ()

let delete t key =
  let leaf_pid, leaf, path = descend_to_leaf t key in
  match Node.delete leaf key with
  | None -> false
  | Some leaf ->
      if Node.size leaf < min_entries t then begin
        rebalance_leaf t leaf_pid leaf path;
        maybe_collapse_root t
      end
      else write_node t leaf_pid leaf;
      true

(* Leftmost leaf: descend always through the leftmost child. *)
let leftmost_leaf t =
  let rec go pid =
    let node = read_node t pid in
    match Node.kind node with
    | Node.Leaf -> (pid, node)
    | Node.Internal -> (
        match Node.leftmost node with
        | Some c -> go c
        | None -> failwith "Btree: internal node without leftmost child")
  in
  go (read_root t)

let fold t f acc =
  let rec walk acc node =
    let acc =
      List.fold_left (fun acc (k, v) -> f acc k v) acc (Node.entries node)
    in
    match Node.right_link node with
    | Some r -> walk acc (read_node t r)
    | None -> acc
  in
  walk acc (snd (leftmost_leaf t))

let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

let range t ~lo ~hi =
  let _, leaf, _ = descend_to_leaf t lo in
  let rec walk acc node =
    let keep =
      List.filter (fun (k, _) -> k >= lo && k < hi) (Node.entries node)
    in
    let acc = List.rev_append keep acc in
    let continue =
      match Node.high_key node with Some h -> h < hi | None -> false
    in
    if continue then
      match Node.right_link node with
      | Some r -> walk acc (read_node t r)
      | None -> acc
    else acc
  in
  List.rev (walk [] leaf)

let cardinal t = fold t (fun n _ _ -> n + 1) 0

(* -- statistics and invariants ---------------------------------------------- *)

type stats = {
  height : int;
  internal_nodes : int;
  leaves : int;
  keys : int;
  avg_fill : float;
}

let stats t =
  let rec level pids depth (internals, leaves, keys, fills) =
    match pids with
    | [] -> (depth - 1, internals, leaves, keys, fills)
    | _ ->
        let nodes = List.map (fun p -> read_node t p) pids in
        let next =
          List.concat_map
            (fun n ->
              match Node.kind n with
              | Node.Leaf -> []
              | Node.Internal -> (
                  (match Node.leftmost n with Some c -> [ c ] | None -> [])
                  @ List.map (fun (_, c) -> int_of_string c) (Node.entries n)))
            nodes
        in
        let internals =
          internals
          + List.length (List.filter (fun n -> Node.kind n = Node.Internal) nodes)
        in
        let leaves =
          leaves + List.length (List.filter (fun n -> Node.kind n = Node.Leaf) nodes)
        in
        let keys =
          keys
          + List.fold_left
              (fun acc n ->
                if Node.kind n = Node.Leaf then acc + Node.size n else acc)
              0 nodes
        in
        let fills =
          fills
          @ List.map
              (fun n -> float_of_int (Node.size n) /. float_of_int t.max_entries)
              nodes
        in
        level next (depth + 1) (internals, leaves, keys, fills)
  in
  let height, internal_nodes, leaves, keys, fills =
    level [ read_root t ] 1 (0, 0, 0, [])
  in
  let avg_fill =
    match fills with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 fills /. float_of_int (List.length fills)
  in
  { height; internal_nodes; leaves; keys; avg_fill }

let check_invariants t =
  let ( let* ) = Result.bind in
  let fail fmt = Fmt.kstr (fun s -> Error s) fmt in
  (* 1. all leaves at the same depth, following child pointers only *)
  let rec depths pid d acc =
    let node = read_node t pid in
    match Node.kind node with
    | Node.Leaf -> Ok (d :: acc)
    | Node.Internal ->
        let children =
          (match Node.leftmost node with Some c -> [ c ] | None -> [])
          @ List.map (fun (_, c) -> int_of_string c) (Node.entries node)
        in
        List.fold_left
          (fun acc c ->
            let* acc = acc in
            depths c (d + 1) acc)
          (Ok acc) children
  in
  let* ds = depths (read_root t) 0 [] in
  let* () =
    match ds with
    | [] -> Ok ()
    | d :: rest ->
        if List.for_all (( = ) d) rest then Ok ()
        else fail "leaves at unequal depths"
  in
  (* 2. every node sorted and within its high key *)
  let rec check_node pid =
    let node = read_node t pid in
    let keys = List.map fst (Node.entries node) in
    let rec sorted = function
      | a :: (b :: _ as rest) -> a < b && sorted rest
      | _ -> true
    in
    let* () =
      if sorted keys then Ok () else fail "page %d: keys out of order" pid
    in
    let* () =
      match Node.high_key node with
      | Some h when List.exists (fun k -> k >= h) keys ->
          fail "page %d: key at or above high key" pid
      | _ -> Ok ()
    in
    match Node.kind node with
    | Node.Leaf -> Ok ()
    | Node.Internal ->
        let children =
          (match Node.leftmost node with Some c -> [ c ] | None -> [])
          @ List.map (fun (_, c) -> int_of_string c) (Node.entries node)
        in
        List.fold_left
          (fun acc c ->
            let* () = acc in
            check_node c)
          (Ok ()) children
  in
  let* () = check_node (read_root t) in
  (* 3. the leaf chain is globally sorted *)
  let all = to_list t in
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) -> a < b && sorted rest
    | _ -> true
  in
  if sorted all then Ok () else fail "leaf chain out of order"

let pp_stats ppf s =
  Fmt.pf ppf "height=%d internal=%d leaves=%d keys=%d fill=%.2f" s.height
    s.internal_nodes s.leaves s.keys s.avg_fill
