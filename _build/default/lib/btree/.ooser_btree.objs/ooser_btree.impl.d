lib/btree/ooser_btree.ml: Btree Node Ooser_storage
