lib/btree/node.ml: Array Fmt List Ooser_storage Printf
