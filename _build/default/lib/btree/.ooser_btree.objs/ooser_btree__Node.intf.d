lib/btree/node.mli: Format
