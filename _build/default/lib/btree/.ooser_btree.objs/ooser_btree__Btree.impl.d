lib/btree/btree.ml: Buffer_pool Codec Disk Fmt List Node Ooser_storage Page Result
