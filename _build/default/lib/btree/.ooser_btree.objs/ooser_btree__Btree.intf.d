lib/btree/btree.mli: Buffer_pool Format Ooser_storage
