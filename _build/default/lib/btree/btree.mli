(** B+ tree with B-link pointers over the page store (the index manager
    of the paper's encyclopedia example, §2 / Fig. 2).

    Keys and values are strings; nodes are serialized into pages of the
    buffer pool; splits propagate upward through the recorded descent
    path, with B-link right-moves tolerating concurrent splits.  Deletion
    is lazy (no rebalancing), as in most production index managers. *)

open Ooser_storage

type t

val create : ?max_entries:int -> Buffer_pool.t -> t
(** A fresh empty tree; nodes split beyond [max_entries] entries
    (default 8 — the experiments sweep this fanout).
    @raise Invalid_argument when [max_entries < 2]. *)

val max_entries : t -> int

val insert : t -> string -> string -> unit
(** Upsert. *)

val search : t -> string -> string option
val mem : t -> string -> bool

val delete : t -> string -> bool
(** [false] when the key was absent.  Underfull leaves are rebalanced
    against their right sibling (merge or borrow through the B-link); an
    empty internal root collapses onto its only child; internal nodes are
    otherwise left underfull (lazy, as in most production index
    managers). *)

val range : t -> lo:string -> hi:string -> (string * string) list
(** Entries with [lo <= key < hi], in key order. *)

val fold : t -> ('a -> string -> string -> 'a) -> 'a -> 'a
(** Over all entries in key order (walks the leaf chain). *)

val to_list : t -> (string * string) list
val cardinal : t -> int

(** Structure statistics for the experiment reports. *)
type stats = {
  height : int;  (** 1 for a lone leaf *)
  internal_nodes : int;
  leaves : int;
  keys : int;
  avg_fill : float;  (** mean entries/max_entries over all nodes *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val check_invariants : t -> (unit, string) result
(** Sortedness, equal leaf depth, high-key bounds, ordered leaf chain. *)

val node_reads : t -> int
val node_writes : t -> int
val splits : t -> int
val merges : t -> int
val borrows : t -> int
