(* Umbrella module for the textual history format. *)

module Lexer = Lexer
module Doc = Doc
module Parser = Parser
