(** AST of the history description language, convertible to and from the
    core {!Ooser_core.History} representation.  See {!Parser} for the
    grammar. *)

open Ooser_core

type spec_decl =
  | Rw of { reads : string list; writes : string list }
  | All_conflict
  | All_commute
  | Conflicts of (string * string) list
      (** listed method pairs conflict, the rest commute *)
  | Commutes of (string * string) list
      (** listed method pairs commute, the rest conflict *)
  | Keyed of spec_decl
      (** refine by first argument: different keys always commute *)

(** A child group: sequential children run one after another; the
    members of a [par { ... }] block carry no mutual precedence and run
    as parallel branches (Def. 9). *)
type group = Seq_call of call | Par_calls of call list

and call = {
  c_obj : string;
  c_meth : string;
  c_args : Value.t list;
  c_children : group list;
}

type txn = { t_id : int; t_calls : group list }

type t = {
  objects : (string * spec_decl) list;
  txns : txn list;
  order : (int * int list) list option;
      (** (transaction id, path) per primitive; [None] = serial *)
}

val spec_of_decl : spec_decl -> Commutativity.spec
val registry : t -> Commutativity.registry
(** Undeclared objects default to all-conflict. *)

val to_history : t -> History.t

val of_history : ?objects:(string * spec_decl) list -> History.t -> t
(** Rebuild a printable document from a history; commutativity specs are
    opaque functions and must be re-supplied. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
