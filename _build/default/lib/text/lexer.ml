(* Hand-written lexer for the history description language (see
   Parser for the grammar). *)

type token =
  | Ident of string
  | String of string
  | Int of int
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Comma
  | Colon
  | Equals
  | Semi
  | Eof

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable peeked : (token * int) option;
}

exception Error of string

let fail t fmt =
  Fmt.kstr (fun msg -> raise (Error (Printf.sprintf "line %d: %s" t.line msg))) fmt

let create src = { src; pos = 0; line = 1; peeked = None }

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-' || c = '\''

let rec skip_ws t =
  if t.pos < String.length t.src then
    match t.src.[t.pos] with
    | ' ' | '\t' | '\r' ->
        t.pos <- t.pos + 1;
        skip_ws t
    | '\n' ->
        t.pos <- t.pos + 1;
        t.line <- t.line + 1;
        skip_ws t
    | '#' ->
        while t.pos < String.length t.src && t.src.[t.pos] <> '\n' do
          t.pos <- t.pos + 1
        done;
        skip_ws t
    | _ -> ()

let lex_token t =
  skip_ws t;
  if t.pos >= String.length t.src then Eof
  else
    let c = t.src.[t.pos] in
    match c with
    | '{' -> t.pos <- t.pos + 1; Lbrace
    | '}' -> t.pos <- t.pos + 1; Rbrace
    | '(' -> t.pos <- t.pos + 1; Lparen
    | ')' -> t.pos <- t.pos + 1; Rparen
    | ',' -> t.pos <- t.pos + 1; Comma
    | ':' -> t.pos <- t.pos + 1; Colon
    | '=' -> t.pos <- t.pos + 1; Equals
    | ';' -> t.pos <- t.pos + 1; Semi
    | '"' ->
        let buf = Buffer.create 16 in
        let rec go i =
          if i >= String.length t.src then fail t "unterminated string"
          else
            match t.src.[i] with
            | '"' ->
                t.pos <- i + 1;
                String (Buffer.contents buf)
            | '\n' -> fail t "newline in string"
            | ch ->
                Buffer.add_char buf ch;
                go (i + 1)
        in
        go (t.pos + 1)
    | c when (c >= '0' && c <= '9') || c = '-' ->
        let start = t.pos in
        t.pos <- t.pos + 1;
        while
          t.pos < String.length t.src
          && t.src.[t.pos] >= '0'
          && t.src.[t.pos] <= '9'
        do
          t.pos <- t.pos + 1
        done;
        (* an identifier may start with a digit only if it continues with
           identifier characters that are not digits — treat "12ab" as an
           identifier for action names like "1.2" handled via Ident *)
        if t.pos < String.length t.src && is_ident_char t.src.[t.pos] then begin
          while t.pos < String.length t.src && is_ident_char t.src.[t.pos] do
            t.pos <- t.pos + 1
          done;
          Ident (String.sub t.src start (t.pos - start))
        end
        else Int (int_of_string (String.sub t.src start (t.pos - start)))
    | c when is_ident_char c ->
        let start = t.pos in
        while t.pos < String.length t.src && is_ident_char t.src.[t.pos] do
          t.pos <- t.pos + 1
        done;
        Ident (String.sub t.src start (t.pos - start))
    | c -> fail t "unexpected character %C" c

let next t =
  match t.peeked with
  | Some (tok, line) ->
      t.peeked <- None;
      t.line <- line;
      tok
  | None -> lex_token t

let peek t =
  match t.peeked with
  | Some (tok, _) -> tok
  | None ->
      let tok = lex_token t in
      t.peeked <- Some (tok, t.line);
      tok

let line t = t.line

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %S" s
  | String s -> Fmt.pf ppf "string %S" s
  | Int i -> Fmt.pf ppf "integer %d" i
  | Lbrace -> Fmt.string ppf "'{'"
  | Rbrace -> Fmt.string ppf "'}'"
  | Lparen -> Fmt.string ppf "'('"
  | Rparen -> Fmt.string ppf "')'"
  | Comma -> Fmt.string ppf "','"
  | Colon -> Fmt.string ppf "':'"
  | Equals -> Fmt.string ppf "'='"
  | Semi -> Fmt.string ppf "';'"
  | Eof -> Fmt.string ppf "end of input"
