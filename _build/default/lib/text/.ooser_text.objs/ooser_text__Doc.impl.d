lib/text/doc.ml: Action Array Call_tree Commutativity Fmt Fun History Ids List Obj_id Ooser_core String Value
