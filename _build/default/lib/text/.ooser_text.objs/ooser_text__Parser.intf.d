lib/text/parser.mli: Doc Ooser_core
