lib/text/lexer.ml: Buffer Fmt Printf String
