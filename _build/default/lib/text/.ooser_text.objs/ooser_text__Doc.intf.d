lib/text/doc.mli: Commutativity Format History Ooser_core Value
