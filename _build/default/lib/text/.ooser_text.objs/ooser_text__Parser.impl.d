lib/text/parser.ml: Doc Fmt Lexer List Ooser_core Printf String
