lib/text/ooser_text.ml: Doc Lexer Parser
