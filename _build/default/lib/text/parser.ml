(* Recursive-descent parser for the history description language.

   Grammar (see Doc for an example):

     file    ::= decl*
     decl    ::= "object" IDENT spec
               | "txn" INT "{" call* "}"
               | "order" ref+
     spec    ::= "rw" "reads" "=" idents "writes" "=" idents
               | "allconflict" | "allcommute"
               | "conflicts" "=" pairs
               | "commutes" "=" pairs
               | "keyed" spec
     idents  ::= IDENT ("," IDENT)*
     pairs   ::= IDENT ":" IDENT ("," IDENT ":" IDENT)*
     call    ::= IDENT "." IDENT args? ("{" group* "}")? ";"?
     group   ::= call | "par" "{" call* "}"
     args    ::= "(" value ("," value)* ")"
     value   ::= STRING | INT | IDENT
     ref     ::= INT ("." INT)*        -- transaction id, then path

   The dotted parts of call names split at the LAST dot: "Enc.v2.insert"
   is object "Enc.v2", method "insert". *)

open Lexer

exception Error = Lexer.Error

let fail lx fmt =
  Fmt.kstr
    (fun msg -> raise (Error (Printf.sprintf "line %d: %s" (Lexer.line lx) msg)))
    fmt

let expect lx want =
  let tok = Lexer.next lx in
  if tok <> want then
    fail lx "expected %a, found %a" Lexer.pp_token want Lexer.pp_token tok

let ident lx =
  match Lexer.next lx with
  | Ident s -> s
  | tok -> fail lx "expected identifier, found %a" Lexer.pp_token tok

let idents lx =
  let rec go acc =
    let acc = ident lx :: acc in
    if Lexer.peek lx = Comma then begin
      ignore (Lexer.next lx);
      go acc
    end
    else List.rev acc
  in
  go []

let pairs lx =
  let rec go acc =
    let a = ident lx in
    expect lx Colon;
    let b = ident lx in
    let acc = (a, b) :: acc in
    if Lexer.peek lx = Comma then begin
      ignore (Lexer.next lx);
      go acc
    end
    else List.rev acc
  in
  go []

let rec spec lx =
  match Lexer.next lx with
  | Ident "rw" ->
      (match ident lx with
      | "reads" -> ()
      | other -> fail lx "expected 'reads', found %S" other);
      expect lx Equals;
      let reads = idents lx in
      (match ident lx with
      | "writes" -> ()
      | other -> fail lx "expected 'writes', found %S" other);
      expect lx Equals;
      let writes = idents lx in
      Doc.Rw { reads; writes }
  | Ident "allconflict" -> Doc.All_conflict
  | Ident "allcommute" -> Doc.All_commute
  | Ident "conflicts" ->
      expect lx Equals;
      Doc.Conflicts (pairs lx)
  | Ident "commutes" ->
      expect lx Equals;
      Doc.Commutes (pairs lx)
  | Ident "keyed" -> Doc.Keyed (spec lx)
  | tok -> fail lx "expected a commutativity spec, found %a" Lexer.pp_token tok

let value lx =
  match Lexer.next lx with
  | String s -> Ooser_core.Value.str s
  | Int i -> Ooser_core.Value.int i
  | Ident s -> Ooser_core.Value.str s
  | tok -> fail lx "expected a value, found %a" Lexer.pp_token tok

let split_call_name lx name =
  match String.rindex_opt name '.' with
  | Some i when i > 0 && i < String.length name - 1 ->
      (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
  | _ -> fail lx "expected Object.method, found %S" name

let rec call lx =
  let name = ident lx in
  let c_obj, c_meth = split_call_name lx name in
  let c_args =
    if Lexer.peek lx = Lparen then begin
      ignore (Lexer.next lx);
      let rec go acc =
        let acc = value lx :: acc in
        match Lexer.next lx with
        | Comma -> go acc
        | Rparen -> List.rev acc
        | tok -> fail lx "expected ',' or ')', found %a" Lexer.pp_token tok
      in
      if Lexer.peek lx = Rparen then begin
        ignore (Lexer.next lx);
        []
      end
      else go []
    end
    else []
  in
  let c_children =
    if Lexer.peek lx = Lbrace then begin
      ignore (Lexer.next lx);
      groups lx []
    end
    else []
  in
  if Lexer.peek lx = Semi then ignore (Lexer.next lx);
  { Doc.c_obj; c_meth; c_args; c_children }

(* a brace-delimited sequence of groups; consumes the closing brace *)
and groups lx acc =
  match Lexer.peek lx with
  | Rbrace ->
      ignore (Lexer.next lx);
      List.rev acc
  | Ident "par" ->
      ignore (Lexer.next lx);
      expect lx Lbrace;
      let rec members acc =
        if Lexer.peek lx = Rbrace then begin
          ignore (Lexer.next lx);
          List.rev acc
        end
        else members (call lx :: acc)
      in
      let block = members [] in
      if Lexer.peek lx = Semi then ignore (Lexer.next lx);
      groups lx (Doc.Par_calls block :: acc)
  | _ -> groups lx (Doc.Seq_call (call lx) :: acc)

let order_ref lx =
  (* INT ("." INT)* lexes as Int when a single number, as Ident like
     "1.2.3" otherwise *)
  match Lexer.next lx with
  | Int top -> (top, [])
  | Ident s -> (
      match List.map int_of_string (String.split_on_char '.' s) with
      | top :: path -> (top, path)
      | [] -> fail lx "empty order reference"
      | exception _ -> fail lx "bad order reference %S" s)
  | tok -> fail lx "expected an order reference, found %a" Lexer.pp_token tok

let parse_string src =
  let lx = Lexer.create src in
  let objects = ref [] in
  let txns = ref [] in
  let order = ref None in
  let rec decls () =
    match Lexer.peek lx with
    | Eof -> ()
    | Ident "object" ->
        ignore (Lexer.next lx);
        let name = ident lx in
        let s = spec lx in
        objects := (name, s) :: !objects;
        decls ()
    | Ident "txn" ->
        ignore (Lexer.next lx);
        let id =
          match Lexer.next lx with
          | Int i -> i
          | tok -> fail lx "expected a transaction id, found %a" Lexer.pp_token tok
        in
        expect lx Lbrace;
        txns := { Doc.t_id = id; t_calls = groups lx [] } :: !txns;
        decls ()
    | Ident "order" ->
        ignore (Lexer.next lx);
        let rec go acc =
          match Lexer.peek lx with
          | Int _ | Ident _ -> go (order_ref lx :: acc)
          | _ -> List.rev acc
        in
        order := Some (go []);
        decls ()
    | tok -> fail lx "expected 'object', 'txn' or 'order', found %a" Lexer.pp_token tok
  in
  match decls () with
  | () ->
      Ok
        {
          Doc.objects = List.rev !objects;
          txns = List.rev !txns;
          order = !order;
        }
  | exception Error msg -> Error msg

let parse_history src =
  match parse_string src with
  | Error _ as e -> e
  | Ok doc -> (
      let h = Doc.to_history doc in
      match Ooser_core.History.validate h with
      | Ok () -> Ok h
      | Error msg -> Error ("invalid history: " ^ msg))
