(** Recursive-descent parser for the history description language.

    {v
    file    ::= decl*
    decl    ::= "object" IDENT spec
              | "txn" INT "{" call* "}"
              | "order" ref+
    spec    ::= "rw" "reads" "=" idents "writes" "=" idents
              | "allconflict" | "allcommute"
              | "conflicts" "=" pairs
              | "commutes" "=" pairs
              | "keyed" spec
    call    ::= IDENT "." IDENT args? ("{" call* "}")? ";"?
    args    ::= "(" value ("," value)* ")"
    ref     ::= INT ("." INT)*     -- transaction id, then path
    v}

    Comments run from [#] to end of line.  The dotted call name splits at
    the last dot: ["Enc.v2.insert"] is object ["Enc.v2"], method
    ["insert"]. *)

exception Error of string

val parse_string : string -> (Doc.t, string) result

val parse_history : string -> (Ooser_core.History.t, string) result
(** Parse and validate (order covers exactly the primitives). *)
