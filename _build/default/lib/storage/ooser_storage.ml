(* Umbrella module for the page storage substrate. *)

module Codec = Codec
module Page = Page
module Disk = Disk
module Buffer_pool = Buffer_pool
module Wal = Wal
module Logged_store = Logged_store
