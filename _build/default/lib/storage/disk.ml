(* A volume of pages.

   The paper's testbed stored pages on disk through the VODAK prototype;
   we keep page images in memory (see DESIGN.md, substitutions) behind the
   same read/write-by-page-id interface, and count the I/Os so experiments
   can report access statistics. *)

type page_id = int

type t = {
  page_size : int;
  mutable pages : Bytes.t option array;
  mutable next : int;
  mutable reads : int;
  mutable writes : int;
}

let create ?(page_size = 4096) () =
  { page_size; pages = Array.make 64 None; next = 0; reads = 0; writes = 0 }

let page_size t = t.page_size
let page_count t = t.next
let reads t = t.reads
let writes t = t.writes

let grow t =
  let cap = Array.length t.pages in
  if t.next >= cap then begin
    let bigger = Array.make (cap * 2) None in
    Array.blit t.pages 0 bigger 0 cap;
    t.pages <- bigger
  end

let alloc t =
  grow t;
  let id = t.next in
  t.pages.(id) <- Some (Bytes.make t.page_size '\000');
  t.next <- id + 1;
  id

let check t id =
  if id < 0 || id >= t.next then
    invalid_arg (Printf.sprintf "Disk: page %d out of range" id)

let read t id =
  check t id;
  t.reads <- t.reads + 1;
  match t.pages.(id) with
  | Some b -> Bytes.copy b
  | None -> invalid_arg (Printf.sprintf "Disk: page %d unallocated" id)

let write t id bytes =
  check t id;
  if Bytes.length bytes <> t.page_size then
    invalid_arg "Disk.write: wrong page size";
  t.writes <- t.writes + 1;
  t.pages.(id) <- Some (Bytes.copy bytes)
