(* Minimal binary codec for node serialization. *)

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256

  let u8 b v =
    if v < 0 || v > 0xFF then invalid_arg "Codec.u8";
    Buffer.add_char b (Char.chr v)

  let u16 b v =
    if v < 0 || v > 0xFFFF then invalid_arg "Codec.u16";
    Buffer.add_char b (Char.chr (v land 0xFF));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF))

  let u32 b v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.u32";
    u16 b (v land 0xFFFF);
    u16 b ((v lsr 16) land 0xFFFF)

  let string b s =
    u16 b (String.length s);
    Buffer.add_string b s

  let contents b = Buffer.contents b
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let create data = { data; pos = 0 }

  let ensure r n =
    if r.pos + n > String.length r.data then failwith "Codec: truncated input"

  let u8 r =
    ensure r 1;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    let lo = u8 r in
    let hi = u8 r in
    lo lor (hi lsl 8)

  let u32 r =
    let lo = u16 r in
    let hi = u16 r in
    lo lor (hi lsl 16)

  let string r =
    let len = u16 r in
    ensure r len;
    let s = String.sub r.data r.pos len in
    r.pos <- r.pos + len;
    s

  let at_end r = r.pos = String.length r.data
end
