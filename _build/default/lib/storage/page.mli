(** Slotted pages — the common primitive object type of the paper ("in
    database systems exists a common object type which methods call no
    other actions: the page", §2).

    A page stores variable-length records addressed by stable slot
    numbers.  The slot directory grows from the header; the record heap
    grows from the end of the page; deletion leaves a dead slot that can
    be reused; compaction defragments the heap. *)

type t

val create : ?size:int -> unit -> t
(** A fresh empty page (default 4096 bytes).
    @raise Invalid_argument for sizes outside [64, 65535]. *)

val of_bytes : Bytes.t -> t
(** View raw bytes as a page (no copy). *)

val to_bytes : t -> Bytes.t
val copy : t -> t
val size : t -> int

val kind : t -> int
(** A small tag free for access methods (e.g. B+ tree node kinds). *)

val set_kind : t -> int -> unit

val insert : t -> string -> int option
(** Insert a record; [Some slot] on success, [None] when the page cannot
    fit it even after compaction.
    @raise Invalid_argument on the empty record. *)

val get : t -> int -> string option
val get_exn : t -> int -> string
val update : t -> int -> string -> bool
(** In-place when sizes match; otherwise reallocates within the page.
    [false] when the slot is dead or space is insufficient. *)

val delete : t -> int -> bool
val is_live : t -> int -> bool

val write_at : t -> int -> string -> bool
(** Force a record into a {e specific} slot, growing the directory and
    leaving intermediate slots dead if needed — used by log-based
    recovery, which must reproduce exact slot assignments.
    @raise Invalid_argument on negative slots. *)

val num_slots : t -> int
(** Directory size, dead slots included. *)

val record_count : t -> int
val live_slots : t -> int list
val free_space : t -> int
val contiguous_free : t -> int
val compact : t -> unit
val iter : t -> (int -> string -> unit) -> unit
val fold : t -> ('a -> int -> string -> 'a) -> 'a -> 'a
val pp : Format.formatter -> t -> unit
