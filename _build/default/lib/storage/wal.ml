(* Write-ahead log.

   §1 of the paper assumes transactions execute "reliably — as if there
   were no failures"; this module provides the substrate: slot-level
   before/after-image logging with a force operation modelling stable
   storage.  A simulated crash keeps exactly the records forced so far.

   Records are also serialised through the binary codec so the log can be
   externalised; the in-memory form is authoritative for the simulator. *)

type lsn = int

type record =
  | Begin of int
  | Update of {
      txn : int;
      page : Disk.page_id;
      slot : int;
      before : string option;  (* None = slot was dead *)
      after : string option;  (* None = slot becomes dead *)
    }
  | Commit of int
  | Abort of int
  | Checkpoint of int list  (* transactions active at checkpoint time *)

type t = {
  mutable entries : (lsn * record) list;  (* newest first *)
  mutable next_lsn : lsn;
  mutable stable_lsn : lsn;  (* entries with lsn < stable_lsn survive a crash *)
}

let create () = { entries = []; next_lsn = 0; stable_lsn = 0 }

let append t record =
  let lsn = t.next_lsn in
  t.entries <- (lsn, record) :: t.entries;
  t.next_lsn <- lsn + 1;
  lsn

let force t = t.stable_lsn <- t.next_lsn

let next_lsn t = t.next_lsn
let stable_lsn t = t.stable_lsn

let all t = List.rev t.entries

let stable t =
  List.filter (fun (lsn, _) -> lsn < t.stable_lsn) (List.rev t.entries)

(* Drop every record below [upto] (log truncation after a quiescent
   checkpoint). *)
let truncate t ~upto =
  t.entries <- List.filter (fun (lsn, _) -> lsn >= upto) t.entries

(* The log as it looks after a crash: only forced records remain. *)
let crash t =
  {
    entries = List.filter (fun (lsn, _) -> lsn < t.stable_lsn) t.entries;
    next_lsn = t.stable_lsn;
    stable_lsn = t.stable_lsn;
  }

(* -- serialization --------------------------------------------------------- *)

let encode_record r =
  let w = Codec.Writer.create () in
  let opt_string = function
    | None -> Codec.Writer.u8 w 0
    | Some s ->
        Codec.Writer.u8 w 1;
        Codec.Writer.string w s
  in
  (match r with
  | Begin txn ->
      Codec.Writer.u8 w 1;
      Codec.Writer.u32 w txn
  | Update { txn; page; slot; before; after } ->
      Codec.Writer.u8 w 2;
      Codec.Writer.u32 w txn;
      Codec.Writer.u32 w page;
      Codec.Writer.u16 w slot;
      opt_string before;
      opt_string after
  | Commit txn ->
      Codec.Writer.u8 w 3;
      Codec.Writer.u32 w txn
  | Abort txn ->
      Codec.Writer.u8 w 4;
      Codec.Writer.u32 w txn
  | Checkpoint active ->
      Codec.Writer.u8 w 5;
      Codec.Writer.u16 w (List.length active);
      List.iter (Codec.Writer.u32 w) active);
  Codec.Writer.contents w

let decode_record s =
  let r = Codec.Reader.create s in
  let opt_string () =
    match Codec.Reader.u8 r with 0 -> None | _ -> Some (Codec.Reader.string r)
  in
  match Codec.Reader.u8 r with
  | 1 -> Begin (Codec.Reader.u32 r)
  | 2 ->
      let txn = Codec.Reader.u32 r in
      let page = Codec.Reader.u32 r in
      let slot = Codec.Reader.u16 r in
      let before = opt_string () in
      let after = opt_string () in
      Update { txn; page; slot; before; after }
  | 3 -> Commit (Codec.Reader.u32 r)
  | 4 -> Abort (Codec.Reader.u32 r)
  | 5 ->
      let n = Codec.Reader.u16 r in
      Checkpoint (List.init n (fun _ -> Codec.Reader.u32 r))
  | k -> failwith (Printf.sprintf "Wal.decode_record: bad tag %d" k)

let pp_record ppf = function
  | Begin t -> Fmt.pf ppf "BEGIN %d" t
  | Commit t -> Fmt.pf ppf "COMMIT %d" t
  | Abort t -> Fmt.pf ppf "ABORT %d" t
  | Checkpoint active ->
      Fmt.pf ppf "CHECKPOINT active=[%a]" (Fmt.list ~sep:(Fmt.any " ") Fmt.int)
        active
  | Update { txn; page; slot; before; after } ->
      let o ppf = function
        | None -> Fmt.string ppf "_"
        | Some s -> Fmt.pf ppf "%S" s
      in
      Fmt.pf ppf "UPDATE txn=%d page=%d slot=%d %a -> %a" txn page slot o
        before o after
