(* Slotted pages.

   Layout (all integers little-endian u16):

     0   number of slots (including dead ones)
     2   offset of the start of the record heap (records grow downward
         from the end of the page; the heap start is the lowest record
         offset in use)
     4   page kind tag (free for the access methods above this layer)
     6   slot directory: per slot, u16 offset + u16 length; offset 0
         marks a dead slot

   Records are arbitrary byte strings.  [compact] defragments the heap;
   [insert] compacts automatically when fragmented space would satisfy
   the request. *)

type t = { data : Bytes.t }

let header_size = 6
let slot_entry_size = 4

let size page = Bytes.length page.data

let get_u16 page off = Char.code (Bytes.get page.data off)
                       lor (Char.code (Bytes.get page.data (off + 1)) lsl 8)

let set_u16 page off v =
  if v < 0 || v > 0xFFFF then invalid_arg "Page.set_u16: out of range";
  Bytes.set page.data off (Char.chr (v land 0xFF));
  Bytes.set page.data (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let num_slots page = get_u16 page 0
let heap_start page = get_u16 page 2
let kind page = get_u16 page 4
let set_kind page k = set_u16 page 4 k

let slot_dir_end page = header_size + (num_slots page * slot_entry_size)

let slot_offset page slot = get_u16 page (header_size + (slot * slot_entry_size))

let slot_length page slot =
  get_u16 page (header_size + (slot * slot_entry_size) + 2)

let set_slot page slot ~off ~len =
  set_u16 page (header_size + (slot * slot_entry_size)) off;
  set_u16 page (header_size + (slot * slot_entry_size) + 2) len

let create ?(size = 4096) () =
  if size < 64 || size > 0xFFFF then invalid_arg "Page.create: bad size";
  let page = { data = Bytes.make size '\000' } in
  set_u16 page 0 0;
  set_u16 page 2 size;
  page

let of_bytes data = { data }
let to_bytes page = page.data
let copy page = { data = Bytes.copy page.data }

let live_slots page =
  let n = num_slots page in
  let rec go i acc =
    if i >= n then List.rev acc
    else go (i + 1) (if slot_offset page i <> 0 then i :: acc else acc)
  in
  go 0 []

let record_count page = List.length (live_slots page)

let is_live page slot =
  slot >= 0 && slot < num_slots page && slot_offset page slot <> 0

let get page slot =
  if not (is_live page slot) then None
  else
    Some (Bytes.sub_string page.data (slot_offset page slot) (slot_length page slot))

let get_exn page slot =
  match get page slot with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Page.get_exn: dead slot %d" slot)

(* Contiguous free space between the slot directory and the heap. *)
let contiguous_free page = heap_start page - slot_dir_end page

(* Total reclaimable space, counting dead records. *)
let free_space page =
  let live_bytes =
    List.fold_left (fun acc s -> acc + slot_length page s) 0 (live_slots page)
  in
  size page - header_size
  - (num_slots page * slot_entry_size)
  - live_bytes

let compact page =
  let entries =
    List.map (fun s -> (s, get_exn page s)) (live_slots page)
  in
  (* rewrite records from the end of the page downward *)
  let pos = ref (size page) in
  List.iter
    (fun (s, r) ->
      let len = String.length r in
      pos := !pos - len;
      Bytes.blit_string r 0 page.data !pos len;
      set_slot page s ~off:!pos ~len)
    entries;
  set_u16 page 2 !pos

(* Find a dead slot to reuse, else append a new directory entry. *)
let alloc_slot page =
  let n = num_slots page in
  let rec find i = if i >= n then None else if slot_offset page i = 0 then Some i else find (i + 1) in
  match find 0 with
  | Some s -> Some (s, 0)
  | None -> Some (n, slot_entry_size)

let insert page record =
  let len = String.length record in
  if len = 0 then invalid_arg "Page.insert: empty record";
  match alloc_slot page with
  | None -> None
  | Some (slot, dir_growth) ->
      let need = len + dir_growth in
      if free_space page < need then None
      else begin
        if contiguous_free page < need then compact page;
        if slot = num_slots page then set_u16 page 0 (num_slots page + 1);
        let off = heap_start page - len in
        Bytes.blit_string record 0 page.data off len;
        set_u16 page 2 off;
        set_slot page slot ~off ~len;
        Some slot
      end

let delete page slot =
  if not (is_live page slot) then false
  else begin
    set_slot page slot ~off:0 ~len:0;
    true
  end

let update page slot record =
  if not (is_live page slot) then false
  else begin
    let len = String.length record in
    if len = slot_length page slot then begin
      Bytes.blit_string record 0 page.data (slot_offset page slot) len;
      true
    end
    else begin
      (* delete + re-insert into the SAME slot *)
      let saved_off = slot_offset page slot and saved_len = slot_length page slot in
      set_slot page slot ~off:0 ~len:0;
      if free_space page < len then begin
        set_slot page slot ~off:saved_off ~len:saved_len;
        false
      end
      else begin
        if contiguous_free page < len then compact page;
        let off = heap_start page - len in
        Bytes.blit_string record 0 page.data off len;
        set_u16 page 2 off;
        set_slot page slot ~off ~len;
        true
      end
    end
  end

(* Force a record into a SPECIFIC slot, creating the slot (and any dead
   slots before it) if needed — used by log-based recovery, which must
   reproduce exact slot assignments. *)
let write_at page slot record =
  if slot < 0 then invalid_arg "Page.write_at: negative slot";
  if is_live page slot then update page slot record
  else begin
    let len = String.length record in
    let dir_growth =
      if slot < num_slots page then 0
      else (slot + 1 - num_slots page) * slot_entry_size
    in
    if free_space page < len + dir_growth then false
    else begin
      if slot >= num_slots page then begin
        (* grow the directory; intermediate slots stay dead *)
        let old = num_slots page in
        set_u16 page 0 (slot + 1);
        for s = old to slot do
          set_slot page s ~off:0 ~len:0
        done
      end;
      if contiguous_free page < len then compact page;
      let off = heap_start page - len in
      Bytes.blit_string record 0 page.data off len;
      set_u16 page 2 off;
      set_slot page slot ~off ~len;
      true
    end
  end

let iter page f =
  List.iter (fun s -> f s (get_exn page s)) (live_slots page)

let fold page f acc =
  List.fold_left (fun acc s -> f acc s (get_exn page s)) acc (live_slots page)

let pp ppf page =
  Fmt.pf ppf "page[kind=%d slots=%d live=%d free=%d]" (kind page)
    (num_slots page) (record_count page) (free_space page)
