(* Buffer pool with pin counts and LRU eviction.

   Access methods pin a page, work on the in-frame image and unpin it,
   marking it dirty when modified.  Eviction picks the least recently used
   unpinned frame and writes it back if dirty. *)

type frame = {
  page_id : Disk.page_id;
  page : Page.t;
  mutable pins : int;
  mutable dirty : bool;
  mutable last_use : int;
}

type t = {
  disk : Disk.t;
  capacity : int;
  frames : (Disk.page_id, frame) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

exception Pool_full

let create ?(capacity = 64) disk =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity";
  {
    disk;
    capacity;
    frames = Hashtbl.create (capacity * 2);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let disk t = t.disk
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let resident t = Hashtbl.length t.frames

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let flush_frame t frame =
  if frame.dirty then begin
    Disk.write t.disk frame.page_id (Page.to_bytes frame.page);
    frame.dirty <- false
  end

let evict_one t =
  let victim =
    Hashtbl.fold
      (fun _ f best ->
        if f.pins > 0 then best
        else
          match best with
          | Some b when b.last_use <= f.last_use -> best
          | _ -> Some f)
      t.frames None
  in
  match victim with
  | None -> raise Pool_full
  | Some f ->
      flush_frame t f;
      Hashtbl.remove t.frames f.page_id;
      t.evictions <- t.evictions + 1

let pin t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some f ->
      t.hits <- t.hits + 1;
      f.pins <- f.pins + 1;
      f.last_use <- tick t;
      f.page
  | None ->
      t.misses <- t.misses + 1;
      if Hashtbl.length t.frames >= t.capacity then evict_one t;
      let page = Page.of_bytes (Disk.read t.disk page_id) in
      let f = { page_id; page; pins = 1; dirty = false; last_use = tick t } in
      Hashtbl.replace t.frames page_id f;
      page

let unpin ?(dirty = false) t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | None -> invalid_arg "Buffer_pool.unpin: page not resident"
  | Some f ->
      if f.pins <= 0 then invalid_arg "Buffer_pool.unpin: not pinned";
      f.pins <- f.pins - 1;
      if dirty then f.dirty <- true

let with_page t page_id ~f =
  let page = pin t page_id in
  match f page with
  | result, dirty ->
      unpin ~dirty t page_id;
      result
  | exception e ->
      unpin t page_id;
      raise e

let flush_all t = Hashtbl.iter (fun _ f -> flush_frame t f) t.frames

let alloc t =
  let id = Disk.alloc t.disk in
  (* materialise immediately so the caller can initialise it *)
  ignore (pin t id);
  unpin ~dirty:true t id;
  id
