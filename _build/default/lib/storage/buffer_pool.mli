(** Buffer pool with pin counts and LRU eviction.

    Access methods pin a page, work on the in-frame image, and unpin it
    (marking it dirty when modified).  Eviction picks the least recently
    used unpinned frame and writes it back when dirty. *)

type t

exception Pool_full
(** Raised when every frame is pinned and a new page is requested. *)

val create : ?capacity:int -> Disk.t -> t
(** @raise Invalid_argument when [capacity <= 0]. *)

val disk : t -> Disk.t
val capacity : t -> int

val pin : t -> Disk.page_id -> Page.t
(** Fetch (or find) the page and pin it.  The returned page aliases the
    frame: mutations are visible to later pinners.
    @raise Pool_full when no frame can be evicted. *)

val unpin : ?dirty:bool -> t -> Disk.page_id -> unit
(** @raise Invalid_argument when the page is not resident or not
    pinned. *)

val with_page : t -> Disk.page_id -> f:(Page.t -> 'a * bool) -> 'a
(** Pin, run [f] (returning a result and a dirty flag), unpin.  Unpins
    (clean) when [f] raises. *)

val alloc : t -> Disk.page_id
(** Allocate a fresh page on the underlying volume. *)

val flush_all : t -> unit

val resident : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
