lib/storage/page.mli: Bytes Format
