lib/storage/disk.mli: Bytes
