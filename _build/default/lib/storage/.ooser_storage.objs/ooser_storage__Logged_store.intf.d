lib/storage/logged_store.mli: Disk Wal
