lib/storage/disk.ml: Array Bytes Printf
