lib/storage/logged_store.ml: Bytes Disk Int List Page Wal
