lib/storage/codec.ml: Buffer Char String
