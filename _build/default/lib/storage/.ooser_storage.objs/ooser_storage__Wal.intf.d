lib/storage/wal.mli: Disk Format
