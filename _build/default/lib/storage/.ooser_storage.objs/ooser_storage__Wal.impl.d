lib/storage/wal.ml: Codec Disk Fmt List Printf
