lib/storage/ooser_storage.ml: Buffer_pool Codec Disk Logged_store Page Wal
