lib/storage/codec.mli:
