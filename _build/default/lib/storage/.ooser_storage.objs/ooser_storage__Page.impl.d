lib/storage/page.ml: Bytes Char Fmt List Printf String
