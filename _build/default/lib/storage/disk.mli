(** A volume of pages addressed by page id.

    Page images live in memory (see DESIGN.md, substitutions) behind a
    disk-like read/write interface; I/Os are counted for the experiment
    reports. *)

type page_id = int
type t

val create : ?page_size:int -> unit -> t
val page_size : t -> int

val alloc : t -> page_id
(** Allocate a fresh zeroed page. *)

val read : t -> page_id -> Bytes.t
(** A private copy of the page image.
    @raise Invalid_argument on unallocated ids. *)

val write : t -> page_id -> Bytes.t -> unit
(** @raise Invalid_argument on unallocated ids or wrong-sized images. *)

val page_count : t -> int
val reads : t -> int
val writes : t -> int
