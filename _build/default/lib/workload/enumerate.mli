(** Exhaustive enumeration of interleavings for small transaction
    systems: exact acceptance counts per serializability criterion, and
    exhaustive verification of the inclusion theorems
    (conventional ⊆ multilevel ⊆ oo). *)

open Ooser_core

val multinomial : int list -> int
(** Number of interleavings of sequences with the given lengths. *)

val interleavings :
  ?granularity:[ `Primitive | `Subtransaction ] ->
  Call_tree.t list ->
  Ids.Action_id.t list Seq.t
(** Every interleaving respecting per-transaction program order
    ([`Subtransaction] keeps each top-level call's primitives
    contiguous). *)

val count_interleavings :
  ?granularity:[ `Primitive | `Subtransaction ] -> Call_tree.t list -> int

type exact = {
  total : int;
  oo : int;
  conventional : int;
  multilevel : int;
  inclusions_hold : bool;
      (** conventional ⊆ multilevel ⊆ oo over the full enumeration *)
}

val exact_acceptance :
  ?granularity:[ `Primitive | `Subtransaction ] ->
  ?max_interleavings:int ->
  commut:Commutativity.registry ->
  Call_tree.t list ->
  exact
(** @raise Invalid_argument when the interleaving count exceeds the cap
    (default 20000). *)
