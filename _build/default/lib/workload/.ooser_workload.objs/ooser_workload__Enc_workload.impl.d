lib/workload/enc_workload.ml: Database Encyclopedia Engine List Ooser_cc Ooser_core Ooser_oodb Ooser_sim Printf Value
