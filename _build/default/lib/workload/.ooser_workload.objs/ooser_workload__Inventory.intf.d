lib/workload/inventory.mli: Database Obj_id Ooser_core Ooser_oodb Ooser_sim Runtime Value
