lib/workload/paper_examples.mli: Call_tree Commutativity History Ids Ooser_core
