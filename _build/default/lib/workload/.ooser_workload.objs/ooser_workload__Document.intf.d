lib/workload/document.mli: Database Obj_id Ooser_core Ooser_oodb Runtime
