lib/workload/inventory.ml: Action Adt_objects Array Commutativity Database List Obj_id Ooser_adts Ooser_core Ooser_oodb Ooser_sim Printf Runtime Value
