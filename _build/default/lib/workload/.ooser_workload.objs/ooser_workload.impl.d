lib/workload/ooser_workload.ml: Banking Compound_doc Document Enc_workload Enumerate Inventory Paper_examples Random_schedules
