lib/workload/banking.mli: Database Obj_id Ooser_adts Ooser_core Ooser_oodb Ooser_sim Runtime Value
