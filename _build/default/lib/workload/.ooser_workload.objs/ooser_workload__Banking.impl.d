lib/workload/banking.ml: Array Commutativity Database List Obj_id Ooser_adts Ooser_core Ooser_oodb Ooser_sim Printf Runtime Value
