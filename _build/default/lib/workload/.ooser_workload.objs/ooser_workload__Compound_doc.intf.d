lib/workload/compound_doc.mli: Database Ooser_core Ooser_oodb Runtime
