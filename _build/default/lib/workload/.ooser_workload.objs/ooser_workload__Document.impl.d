lib/workload/document.ml: Action Array Buffer_pool Commutativity Database Disk List Obj_id Ooser_core Ooser_oodb Ooser_storage Page Printf Runtime Value
