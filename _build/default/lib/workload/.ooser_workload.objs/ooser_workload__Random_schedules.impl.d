lib/workload/random_schedules.ml: Action Array Baselines Call_tree Commutativity Fmt History List Obj_id Ooser_core Ooser_sim Printf Serializability String
