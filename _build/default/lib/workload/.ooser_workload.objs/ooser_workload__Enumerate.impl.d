lib/workload/enumerate.ml: Baselines Call_tree History List Ooser_core Printf Seq Serializability
