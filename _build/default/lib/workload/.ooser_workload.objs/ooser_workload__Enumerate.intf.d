lib/workload/enumerate.mli: Call_tree Commutativity Ids Ooser_core Seq
