lib/workload/paper_examples.ml: Action Call_tree Commutativity History Ids List Obj_id Ooser_core Value
