lib/workload/random_schedules.mli: Call_tree Commutativity History Ids Ooser_core Ooser_sim
