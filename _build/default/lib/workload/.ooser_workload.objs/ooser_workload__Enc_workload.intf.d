lib/workload/enc_workload.mli: Database Encyclopedia Ooser_core Ooser_oodb Ooser_sim Runtime
