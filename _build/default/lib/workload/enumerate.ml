(* Exhaustive enumeration of interleavings for small transaction systems.

   Where Random_schedules samples, this module enumerates EVERY
   interleaving (at primitive or subtransaction granularity) and computes
   exact acceptance counts per serializability criterion — used to verify
   the sampled experiments and to check the inclusion theorems
   (conventional ⊆ multilevel ⊆ oo) exhaustively rather than
   statistically.

   The number of interleavings is the multinomial coefficient of the
   per-transaction unit counts; keep systems small (it is checked against
   [max_interleavings]). *)

open Ooser_core

let multinomial counts =
  let rec binom n k acc i =
    if i > k then acc else binom n k (acc * (n - k + i) / i) (i + 1)
  in
  let _, total =
    List.fold_left
      (fun (n, acc) c ->
        let n' = n + c in
        (n', acc * binom n' c 1 1))
      (0, 1) counts
  in
  total

(* All interleavings of the given unit sequences (each inner list keeps
   its order), as a lazy sequence. *)
let rec weave (queues : 'a list list) : 'a list Seq.t =
  if List.for_all (( = ) []) queues then Seq.return []
  else
    List.to_seq queues
    |> Seq.mapi (fun i q -> (i, q))
    |> Seq.concat_map (fun (i, q) ->
           match q with
           | [] -> Seq.empty
           | x :: rest ->
               let queues' =
                 List.mapi (fun j q' -> if j = i then rest else q') queues
               in
               Seq.map (fun tail -> x :: tail) (weave queues'))

let interleavings ?(granularity = `Primitive) tops =
  let units tree =
    match granularity with
    | `Primitive ->
        List.map (fun id -> [ id ]) (History.serial_primitives tree)
    | `Subtransaction ->
        List.map History.serial_primitives (Call_tree.children tree)
  in
  weave (List.map units tops) |> Seq.map List.concat

let count_interleavings ?(granularity = `Primitive) tops =
  let unit_count tree =
    match granularity with
    | `Primitive -> List.length (History.serial_primitives tree)
    | `Subtransaction -> List.length (Call_tree.children tree)
  in
  multinomial (List.map unit_count tops)

type exact = {
  total : int;
  oo : int;
  conventional : int;
  multilevel : int;
  inclusions_hold : bool;
      (* conventional ⊆ multilevel ⊆ oo over the full enumeration *)
}

let exact_acceptance ?(granularity = `Primitive) ?(max_interleavings = 20_000)
    ~commut tops =
  let n = count_interleavings ~granularity tops in
  if n > max_interleavings then
    invalid_arg
      (Printf.sprintf "Enumerate.exact_acceptance: %d interleavings (cap %d)" n
         max_interleavings);
  Seq.fold_left
    (fun acc order ->
      let h = History.v ~tops ~order ~commut in
      let oo_ok = Serializability.oo_serializable h in
      let conv_ok = Baselines.conventional_serializable h in
      let ml_ok = Baselines.multilevel_serializable h in
      {
        total = acc.total + 1;
        oo = (acc.oo + if oo_ok then 1 else 0);
        conventional = (acc.conventional + if conv_ok then 1 else 0);
        multilevel = (acc.multilevel + if ml_ok then 1 else 0);
        inclusions_hold =
          acc.inclusions_hold
          && ((not conv_ok) || ml_ok)
          && ((not ml_ok) || oo_ok);
      })
    { total = 0; oo = 0; conventional = 0; multilevel = 0; inclusions_hold = true }
    (interleavings ~granularity tops)
