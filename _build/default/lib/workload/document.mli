(** Cooperative document editing: the publication-environment workload of
    §1 and Fig. 1.

    A document object over section objects over shared pages — several
    sections are co-located on one page, so edits of different sections by
    different authors collide at page level but commute at the document
    level; a layout pass reads every section and conflicts with all
    edits. *)

open Ooser_core
open Ooser_oodb

type t

val create :
  ?name:string ->
  ?sections:int ->
  ?sections_per_page:int ->
  ?page_size:int ->
  Database.t ->
  t
(** Register the document schema.
    @raise Invalid_argument when [sections <= 0]. *)

val doc_object : t -> Obj_id.t
val sections : t -> int

val section_page : t -> int -> int
(** Page id hosting a section (to observe co-location). *)

val edit : t -> Runtime.ctx -> section:int -> text:string -> unit
val read : t -> Runtime.ctx -> section:int -> string

val layout : t -> Runtime.ctx -> string list
(** Sequential pass over all sections; conflicts with every edit. *)

val layout_par : t -> Runtime.ctx -> string list
(** The same pass with intra-transaction parallelism: all section reads
    fork as parallel branches (Def. 9). *)
