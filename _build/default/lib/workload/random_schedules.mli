(** Random transaction systems and random interleavings, for the
    acceptance-rate experiment (E3) and for property tests.

    Generated systems are two-level (root → method on a mid-level object →
    page reads/writes).  Mid-level commutativity is sampled with a
    configurable density; pages have read/write semantics.  Everything is
    deterministic in the seed. *)

open Ooser_core
module Rng = Ooser_sim.Rng

type params = {
  n_txns : int;
  calls_per_txn : int;
  prims_per_call : int;
  n_objects : int;
  n_pages : int;
  methods_per_object : int;
  p_commute : float;
  p_write : float;
}

val default_params : params

val system : seed:int -> params -> Call_tree.t list * Commutativity.registry

val random_order : Rng.t -> Call_tree.t list -> Ids.Action_id.t list
(** A uniform interleaving respecting per-transaction program order. *)

val random_order_atomic : Rng.t -> Call_tree.t list -> Ids.Action_id.t list
(** An interleaving at subtransaction granularity: the primitives of each
    mid-level call stay contiguous (as an open-nested protocol would
    serialize them); only calls of different transactions interleave. *)

val history : seed:int -> ?order_seed:int -> params -> History.t

type acceptance = {
  samples : int;
  oo_accepted : int;
  conventional_accepted : int;
  multilevel_accepted : int;
}

val acceptance :
  ?granularity:[ `Primitive | `Subtransaction ] ->
  seed:int ->
  samples:int ->
  params ->
  acceptance
(** Fraction of random interleavings accepted by each criterion; the
    paper's claim is [oo ⊇ conventional].  [`Subtransaction] granularity
    keeps each mid-level call atomic, isolating the top-level question. *)
