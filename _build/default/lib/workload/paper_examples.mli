(** The paper's worked examples as reusable transaction systems, shared by
    the test suite and the figure-regeneration harness.

    Object names follow the paper: Enc, BpTree, Leaf11, Page4712, Item8,
    Item9, LinkedList. *)

open Ooser_core

val registry : Commutativity.registry
(** Commutativity of the encyclopedia objects per §2 / Example 1. *)

val insert_txn : int -> string -> Call_tree.t
(** [T_n]: Enc.insert(key) → BpTree.insert → Leaf11.insert →
    Page4712.readx; Page4712.write. *)

val search_txn : int -> string -> Call_tree.t

val insert_pages : int -> Ids.Action_id.t list
(** The page actions of {!insert_txn} [n], in program order. *)

val search_pages : int -> Ids.Action_id.t list

val example1_different_keys : unit -> History.t
(** Fig. 4 left: inserts of different keys — the page conflict stops at
    the commuting leaf inserts. *)

val example1_same_key : unit -> History.t
(** Fig. 4 right: insert and search of one key — inherited to the top. *)

val example2_tree : unit -> Call_tree.t
(** Fig. 5: the example oo-transaction tree. *)

val example3_history : unit -> History.t
(** Fig. 6: the re-entrant call broken by a virtual object. *)

val example4_trees : unit -> Call_tree.t * Call_tree.t * Call_tree.t * Call_tree.t
(** Fig. 7: T1 insert(DBMS), T2 update(DBMS), T3 insert(DBS),
    T4 readSeq. *)

val example4_serial : unit -> History.t
(** Serial execution, baseline of the Fig. 8 dependency table. *)

val example4_crossing : unit -> History.t
(** The crossing interleaving of T1/T3: conventionally rejected,
    oo-serializable. *)
