(** A compound document with three levels of nesting (Fig. 1's
    "processing the layout of a document consists of processing the
    contents, the chapters, ...").

    Book → Chapter objects → Section objects → Page objects.  Edits in
    different chapters commute at book level; different sections commute
    at chapter level; the sections of one chapter share a page, so
    concurrent edits collide at the bottom — three levels of semantic
    inheritance.  The book-wide layout runs the chapter layouts as
    parallel branches (Def. 9). *)

open Ooser_oodb

type t

val create :
  ?name:string ->
  ?chapters:int ->
  ?sections_per_chapter:int ->
  ?page_size:int ->
  Database.t ->
  t
(** @raise Invalid_argument on non-positive dimensions. *)

val book_object : t -> Ooser_core.Obj_id.t
val chapters : t -> int
val sections_per_chapter : t -> int

val edit : t -> Runtime.ctx -> chapter:int -> section:int -> text:string -> unit
val read : t -> Runtime.ctx -> chapter:int -> section:int -> string

val layout : t -> Runtime.ctx -> string list list
(** All chapters' sections, chapter layouts forked in parallel. *)
