lib/adts/ooser_adts.ml: Directory Escrow_counter Fifo_queue Kv_set
