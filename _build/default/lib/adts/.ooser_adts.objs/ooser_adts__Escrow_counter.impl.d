lib/adts/escrow_counter.ml: Action Commutativity Ooser_core Option Printf Value
