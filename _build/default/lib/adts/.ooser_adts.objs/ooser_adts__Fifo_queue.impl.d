lib/adts/fifo_queue.ml: Action Commutativity List Ooser_core Value
