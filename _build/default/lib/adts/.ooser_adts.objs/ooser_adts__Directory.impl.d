lib/adts/directory.ml: Action Commutativity List Ooser_core Value
