lib/adts/fifo_queue.mli: Commutativity Ooser_core Value
