lib/adts/directory.mli: Commutativity Ooser_core Value
