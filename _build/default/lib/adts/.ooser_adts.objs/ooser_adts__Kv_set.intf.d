lib/adts/kv_set.mli: Commutativity Ooser_core Value
