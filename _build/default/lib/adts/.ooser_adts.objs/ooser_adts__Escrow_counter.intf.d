lib/adts/escrow_counter.mli: Action Commutativity Ooser_core
