lib/adts/kv_set.ml: Action Commutativity List Ooser_core Value
