(* Umbrella module for the semantic abstract data types. *)

module Escrow_counter = Escrow_counter
module Kv_set = Kv_set
module Fifo_queue = Fifo_queue
module Directory = Directory
