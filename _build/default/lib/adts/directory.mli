(** Directory: a name-to-value map (Weihl's directory type, §2).

    Keyed commutativity like the set, plus a [list] operation that reads
    every name and therefore conflicts with all updates — the phantom
    problem at the abstract-data-type level, analogous to the paper's
    readSeq on the encyclopedia. *)

open Ooser_core

type t

val create : unit -> t
val lookup : t -> Value.t -> Value.t option
val bind : t -> Value.t -> Value.t -> unit
val unbind : t -> Value.t -> unit
val names : t -> Value.t list
val cardinal : t -> int

val spec : Commutativity.spec
