(** Escrow counter (O'Neil; [9, 14, 17] in the paper).

    A bounded counter whose increments and decrements commute as long as
    the escrow test guarantees both succeed in either order — the
    parameter- and state-dependent commutativity refinement of §2. *)

open Ooser_core

type t

exception Bounds_violation of string

val create : ?low:int -> ?high:int -> int -> t
(** @raise Invalid_argument when the initial value is out of bounds. *)

val value : t -> int
val low : t -> int
val high : t -> int

val incr : t -> int -> unit
(** @raise Bounds_violation when the bound would be exceeded.
    @raise Invalid_argument on negative amounts. *)

val decr : t -> int -> unit
(** @raise Bounds_violation when the bound would be exceeded.
    @raise Invalid_argument on negative amounts. *)

val can_apply : t -> int -> bool
(** Whether adding [delta] keeps the counter within bounds. *)

val delta_of : Action.t -> int option
(** The signed amount of an [incr]/[decr] action; [None] for reads. *)

val spec : t -> Commutativity.spec
(** Escrow commutativity against the counter's current state: updates
    commute when both orders stay within bounds; reads conflict with
    updates and commute with reads. *)
