lib/cc/deadlock.ml: Fmt Int List Ooser_core
