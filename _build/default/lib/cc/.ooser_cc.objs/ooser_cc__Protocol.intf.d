lib/cc/protocol.mli: Action Commutativity Lock_table Ooser_core Ooser_sim
