lib/cc/lock_table.ml: Action Action_id Commutativity Fmt List Obj_id Ooser_core
