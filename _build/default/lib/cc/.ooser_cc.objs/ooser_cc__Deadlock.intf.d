lib/cc/deadlock.mli:
