lib/cc/ooser_cc.ml: Deadlock Lock_table Protocol
