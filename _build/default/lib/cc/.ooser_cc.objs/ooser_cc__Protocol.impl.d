lib/cc/protocol.ml: Action Action_id List Lock_table Ooser_core Ooser_sim
