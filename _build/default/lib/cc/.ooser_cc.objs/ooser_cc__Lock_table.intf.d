lib/cc/lock_table.mli: Action Action_id Commutativity Format Obj_id Ooser_core
