(* Semantic lock table.

   A lock entry records the action that acquired it, the scope action
   whose completion releases it, and the current RETAINER.  In
   multi-level (open nested) locking the scope is the immediate caller: a
   lock taken for an operation on O is held until the calling
   subtransaction commits — precisely the span over which the paper's
   transaction dependencies at O matter.  In flat 2PL the scope is the
   top-level transaction.

   The retainer implements Moss's rule for nested transactions: while the
   acquiring action runs, it retains the lock itself; when it completes,
   the lock is retained by its caller, and so on upward.  A lock never
   conflicts with requests from descendants of its retainer — this is
   what lets a parallel sibling branch proceed after the first branch
   completed, while still blocking it during the first branch's
   execution.

   Conflicts between different transactions are decided by the
   commutativity registry (Def. 9). *)

open Ooser_core

type entry = {
  action : Action.t;
  scope : Action_id.t;
  mutable retainer : Action_id.t;
}

type t = { mutable by_obj : entry list Obj_id.Map.t }

let create () = { by_obj = Obj_id.Map.empty }

let entries_on t obj =
  match Obj_id.Map.find_opt obj t.by_obj with Some l -> l | None -> []

let add t ~action ~scope =
  let obj = Action.obj action in
  t.by_obj <-
    Obj_id.Map.add obj
      ({ action; scope; retainer = Action.id action } :: entries_on t obj)
      t.by_obj

(* Same transaction and one is an ancestor of (or equal to) the other. *)
let call_path_related a b =
  Action_id.top a = Action_id.top b
  && (Action_id.equal a b
     || Action_id.is_proper_ancestor a b
     || Action_id.is_proper_ancestor b a)

(* The retained-lock compatibility rule: a request is compatible with an
   entry whose retainer is the requester itself or one of its
   ancestors. *)
let retained_compatible entry requester_id =
  Action_id.top entry.retainer = Action_id.top requester_id
  && (Action_id.equal entry.retainer requester_id
     || Action_id.is_proper_ancestor entry.retainer requester_id)

let conflicting reg t action =
  let id = Action.id action in
  List.filter
    (fun e ->
      (not (retained_compatible e id))
      && (not (call_path_related (Action.id e.action) id))
      && Commutativity.conflicts reg action e.action)
    (entries_on t (Action.obj action))

let release_scope t scope =
  t.by_obj <-
    Obj_id.Map.filter_map
      (fun _ entries ->
        match
          List.filter (fun e -> not (Action_id.equal e.scope scope)) entries
        with
        | [] -> None
        | l -> Some l)
      t.by_obj

(* Completion of an action: every lock it retains moves up to its
   caller. *)
let escalate t finished =
  match Action_id.parent finished with
  | None -> ()
  | Some parent ->
      Obj_id.Map.iter
        (fun _ entries ->
          List.iter
            (fun e ->
              if Action_id.equal e.retainer finished then e.retainer <- parent)
            entries)
        t.by_obj

let release_top t top =
  t.by_obj <-
    Obj_id.Map.filter_map
      (fun _ entries ->
        match List.filter (fun e -> Action_id.top e.scope <> top) entries with
        | [] -> None
        | l -> Some l)
      t.by_obj

let all_entries t = Obj_id.Map.fold (fun _ es acc -> es @ acc) t.by_obj []

let total t = List.length (all_entries t)

let pp ppf t =
  let pp_entry ppf e =
    Fmt.pf ppf "%a held-by %a retained-by %a until %a" Obj_id.pp
      (Action.obj e.action) Action.pp e.action Action_id.pp e.retainer
      Action_id.pp e.scope
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_entry) (all_entries t)
