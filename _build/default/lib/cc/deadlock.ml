(* Waits-for graph deadlock detection.

   The engine reports, for each blocked transaction, the transactions
   holding the locks it waits for; a cycle in that graph is a deadlock.
   The victim is the youngest transaction in the cycle (largest
   identifier), a deterministic choice that keeps experiments
   reproducible. *)

module G = Ooser_core.Digraph.Make (struct
  type t = int

  let compare = Int.compare
  let pp = Fmt.int
end)

type waits_for = (int * int list) list
(* (waiting transaction, holders it waits for) *)

let graph (w : waits_for) =
  List.fold_left
    (fun g (waiter, holders) ->
      List.fold_left
        (fun g h -> if h <> waiter then G.add waiter h g else g)
        (G.add_vertex waiter g) holders)
    G.empty w

let find_cycle w = G.find_cycle (graph w)

let victim w =
  match find_cycle w with
  | None -> None
  | Some cycle -> Some (List.fold_left max min_int cycle)
