(** Waits-for graph deadlock detection.

    The engine reports, for each blocked transaction, the transactions
    holding the locks it waits for; a cycle is a deadlock.  The victim is
    the youngest transaction in the cycle (largest identifier) — a
    deterministic choice that keeps experiments reproducible. *)

type waits_for = (int * int list) list
(** [(waiting transaction, holders it waits for)] pairs. *)

val find_cycle : waits_for -> int list option
val victim : waits_for -> int option
