(** Semantic lock table.

    A lock entry records the action that acquired it and the scope action
    whose completion releases it.  In multi-level (open nested) locking
    the scope is the immediate caller: a lock taken for an operation on O
    is held until the calling subtransaction commits — precisely the span
    over which the paper's transaction dependencies at O matter.  In flat
    2PL the scope is the top-level transaction. *)

open Ooser_core

type entry = {
  action : Action.t;
  scope : Action_id.t;  (** released when this action completes *)
  mutable retainer : Action_id.t;
      (** Moss's rule: the acquirer while it runs, then escalated to its
          caller on completion; never conflicts with the retainer's
          descendants *)
}

type t

val create : unit -> t
val add : t -> action:Action.t -> scope:Action_id.t -> unit
val entries_on : t -> Obj_id.t -> entry list

val conflicting : Commutativity.registry -> t -> Action.t -> entry list
(** Held entries on the action's object that conflict with it per the
    registry; entries on the requester's own call path are compatible. *)

val call_path_related : Action_id.t -> Action_id.t -> bool

val release_scope : t -> Action_id.t -> unit
(** Drop every entry whose scope is the given action. *)

val escalate : t -> Action_id.t -> unit
(** The action completed: locks it retains move up to its caller. *)

val release_top : t -> int -> unit
(** Drop every entry belonging to a top-level transaction. *)

val all_entries : t -> entry list
val total : t -> int
val pp : Format.formatter -> t -> unit
