(* Umbrella module for the concurrency control library. *)

module Lock_table = Lock_table
module Protocol = Protocol
module Deadlock = Deadlock
